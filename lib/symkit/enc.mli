(** BDD encoding of finite-domain models.

    Every model variable is binary-encoded over a block of boolean
    decision variables; current and next copies of the same bit are
    interleaved (state bit [b] maps to BDD variable [2b] for the
    current copy and [2b+1] for the primed copy). The invariant that
    matters is about {e levels}, not indices: each current bit sits
    immediately above its primed twin in the manager's order, keeping
    transition relations compact and making renaming between the
    copies a level-monotonic shift. [create] declares each twin pair
    as a {!Bdd.set_var_groups} sift group, so the layout survives
    dynamic variable reordering. *)

type var_enc = private {
  name : string;
  domain : Model.domain;
  values : Expr.value array;  (** value of each encoding index *)
  nbits : int;
  first_bit : int;  (** global index of the least significant state bit *)
}

type t

val create : ?var_order:string list -> Bdd.manager -> Model.t -> t
(** [var_order], when given, must be a permutation of the model's
    variable names; it controls which variables get the low (near-root)
    BDD positions. Ordering strongly affects BDD sizes; the benchmark
    harness compares strategies.
    @raise Invalid_argument when it is not a permutation. *)

val mgr : t -> Bdd.manager
val model : t -> Model.t
val nbits : t -> int
(** Total state bits of one copy. *)

val var_enc : t -> string -> var_enc
val cur_set : t -> Bdd.varset
(** All current-copy BDD variables, for quantification. *)

val nxt_set : t -> Bdd.varset

val pred : t -> Expr.t -> Bdd.t
(** A boolean expression (over current and possibly primed variables)
    as a BDD over the bit space. *)

val valid : t -> primed:bool -> Bdd.t
(** "Every variable's bits encode a value inside its domain" — the
    constraint excluding junk codes of non-power-of-two domains. *)

val init_bdd : t -> Bdd.t
(** Conjunction of the init constraints and the current-copy domain
    validity. Cached. *)

val trans_parts : t -> Bdd.t list
(** Each transition constraint as its own BDD (used by the bounded
    model checker). *)

val trans_bdd : t -> Bdd.t
(** The full transition relation: all constraints plus both validity
    conditions. Cached. *)

(** {1 Partitioned transition relation}

    The alternative to {!trans_bdd} for image computation: the same
    constraints kept as an ordered array of conjunctive clusters with
    an early-quantification schedule (Burch–Clarke–Long), so the
    relational product quantifies each state variable out at the last
    cluster that mentions it and the intermediate products stay small. *)

type schedule = private {
  parts : Bdd.t array;  (** ordered conjunctive clusters *)
  img_sched : Bdd.varset array;
      (** current-copy variables to quantify while conjoining
          [parts.(i)] during an image step *)
  pre_sched : Bdd.varset array;  (** primed-copy dual, for preimage *)
  img_free : Bdd.varset;
      (** current-copy variables no cluster mentions: quantified out
          of the frontier before the fold *)
  pre_free : Bdd.varset;
  n_conjuncts : int;  (** raw constraint count before clustering *)
}

val default_cluster_limit : int

val schedule : ?cluster_limit:int -> t -> schedule
(** The cached partition schedule. [cluster_limit] (default
    {!default_cluster_limit}) caps each cluster's node count: adjacent
    constraints are conjoined while the cluster diagram stays under
    it. Changing the limit rebuilds the cache. The cluster diagrams
    are registered as GC roots for the manager's lifetime. *)

val n_partitions : t -> int
(** Cluster count of the currently cached schedule ([0] before the
    first {!schedule} call) — surfaced as an observability gauge. *)

val rename_nxt_to_cur : t -> Bdd.t -> Bdd.t
val rename_cur_to_nxt : t -> Bdd.t -> Bdd.t

val state_cube : t -> Model.state -> Bdd.t
(** The singleton set holding one concrete state (current copy).
    @raise Invalid_argument if a component is outside its domain. *)

val decode_state : t -> Bdd.t -> Model.state
(** Pick one concrete state from a non-empty set, deterministically
    (lowest encoding index first). @raise Invalid_argument on the empty
    set. *)

val bit_of_bddvar : int -> int * bool
(** Map a BDD variable index back to (state bit, primed?). *)
