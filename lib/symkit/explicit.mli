(** Explicit-state breadth-first reachability.

    Generic over the state type: the caller supplies initial states, a
    successor function, and a bad-state predicate. Used as an
    independent cross-check of the symbolic engines (on executable
    encodings of the same models). BFS guarantees that a returned
    counterexample has minimal length. *)

type 'a outcome =
  | Violation of 'a list  (** trace from an initial state to a bad state *)
  | Exhausted of { states : int; depth : int }
      (** full state space explored, no violation *)
  | Bounded of { states : int; depth : int }
      (** search stopped at a resource bound without a verdict *)

val search :
  ?max_states:int ->
  ?max_depth:int ->
  ?cancel:(unit -> bool) ->
  ?obs:Obs.t ->
  initial:'a list ->
  next:('a -> 'a list) ->
  bad:('a -> bool) ->
  unit ->
  'a outcome
(** States are compared and hashed structurally. [cancel] is polled
    once per expanded state (cooperative cancellation, used by the
    portfolio's engine racing); when it fires the search stops with
    {!Bounded}. [obs] (default {!Obs.disabled}) receives an
    [explicit.frontier] span per BFS depth level, the
    [explicit.states]/[explicit.transitions] counters and the
    [explicit.depth] gauge. *)
