(** Symbolic invariant checking by forward reachability.

    Computes the reachable states as a BDD fixpoint and checks a safety
    property of the form "no reachable state satisfies [bad]". On
    failure, a shortest counterexample trace is extracted by walking the
    onion rings of the fixpoint backwards, exactly as SMV does.

    The image computation is the hot path of the whole Section 5
    matrix, so it is tunable along three axes (see {!tuning}):
    conjunctively partitioned transition relations with early
    quantification instead of one monolithic relprod, Coudert–Madre
    [restrict] minimization of the frontier against the reached set,
    and watermark-triggered BDD node reclamation between iterations. *)

type stats = {
  iterations : int;  (** image steps performed *)
  peak_nodes : int;  (** largest BDD (reachable set) seen *)
  reachable_states : float;  (** |reachable| if the run completed *)
}

type result =
  | Safe of stats
  | Unsafe of Model.state array * stats
  | Depth_exhausted of stats
      (** gave up at [max_iterations] without proving or refuting *)

type tuning = {
  partitioned : bool;
  use_restrict : bool;
  gc_watermark : int;
  cluster_limit : int;
}

let default_tuning =
  {
    partitioned = true;
    use_restrict = true;
    gc_watermark = 250_000;
    cluster_limit = Enc.default_cluster_limit;
  }

let monolithic_tuning =
  {
    partitioned = false;
    use_restrict = false;
    gc_watermark = 0;
    cluster_limit = Enc.default_cluster_limit;
  }

(* One-step successors: rename(exists cur (T /\ frontier)). The
   partitioned path folds the frontier through the cluster schedule,
   quantifying each current-copy variable at the last cluster that
   mentions it so the intermediate products never carry the full
   variable set. *)
let image ?(tuning = default_tuning) enc frontier =
  let m = Enc.mgr enc in
  if tuning.partitioned then begin
    let s = Enc.schedule ~cluster_limit:tuning.cluster_limit enc in
    let acc = ref (Bdd.exists m s.Enc.img_free frontier) in
    Array.iteri
      (fun i part -> acc := Bdd.and_exists m s.Enc.img_sched.(i) !acc part)
      s.Enc.parts;
    Enc.rename_nxt_to_cur enc !acc
  end
  else
    let t = Enc.trans_bdd enc in
    Enc.rename_nxt_to_cur enc (Bdd.and_exists m (Enc.cur_set enc) t frontier)

let preimage ?(tuning = default_tuning) enc set =
  let m = Enc.mgr enc in
  if tuning.partitioned then begin
    let s = Enc.schedule ~cluster_limit:tuning.cluster_limit enc in
    let acc =
      ref (Bdd.exists m s.Enc.pre_free (Enc.rename_cur_to_nxt enc set))
    in
    Array.iteri
      (fun i part -> acc := Bdd.and_exists m s.Enc.pre_sched.(i) !acc part)
      s.Enc.parts;
    !acc
  end
  else
    let t = Enc.trans_bdd enc in
    Bdd.and_exists m (Enc.nxt_set enc) t (Enc.rename_cur_to_nxt enc set)

(* Frontier minimization (Coudert–Madre): any set F' with
   frontier <= F' <= reach computes the same fixpoint ring by ring —
   the extra states are already reached, so image(F') \ reach still
   contains exactly the states at the next BFS distance. [restrict]
   picks such an F' with (usually) fewer nodes by treating
   reach /\ ~frontier as a don't-care region; a size guard keeps the
   original when simplification back-fires. *)
let minimize_frontier m ~reach frontier =
  let care = Bdd.dor m frontier (Bdd.dnot m reach) in
  let r = Bdd.restrict m frontier care in
  if Bdd.size r < Bdd.size frontier then r else frontier

(* Rebuild a concrete trace from the rings [r0; ...; rk] where the last
   ring intersects [bad]. *)
let extract_trace ?(tuning = default_tuning) enc rings bad_bdd =
  let m = Enc.mgr enc in
  match rings with
  | [] -> invalid_arg "Reach.extract_trace: no rings"
  | last :: earlier ->
      let s_last = Enc.decode_state enc (Bdd.dand m last bad_bdd) in
      let rec walk state acc = function
        | [] -> state :: acc
        | ring :: rest ->
            let cube = Enc.state_cube enc state in
            let pred_set = Bdd.dand m (preimage ~tuning enc cube) ring in
            let s = Enc.decode_state enc pred_set in
            walk s (state :: acc) rest
      in
      Array.of_list (walk s_last [] earlier)

(* Prebuild the relation (monolithic or partitioned) so its
   construction cost is not attributed to the first image span, and so
   the cluster diagrams are rooted (by Enc) before any sweep. *)
let prepare enc tuning =
  let m = Enc.mgr enc in
  Bdd.set_gc_watermark m tuning.gc_watermark;
  if tuning.partitioned then
    ignore (Enc.schedule ~cluster_limit:tuning.cluster_limit enc)
  else ignore (Enc.trans_bdd enc)

(* The full reachable-state set (no property): used by diagnostics such
   as the deadlock-freedom check below and by the CTL checker. On
   cancellation the set computed so far (a lower bound) is returned.
   Note for GC users: the returned diagram is not left registered as a
   root. *)
let reachable_set ?(max_iterations = max_int) ?(cancel = fun () -> false)
    ?(obs = Obs.disabled) ?(tuning = default_tuning) enc =
  let m = Enc.mgr enc in
  prepare enc tuning;
  let iterations_c = Obs.counter obs "reach.iterations" in
  let finish reach frontier =
    Bdd.deref m reach;
    Bdd.deref m frontier;
    reach
  in
  let rec loop i reach frontier =
    let cancelled = cancel () in
    if i >= max_iterations || cancelled then begin
      if cancelled then Obs.instant obs "reach.cancelled";
      finish reach frontier
    end
    else
      let fmin =
        if tuning.use_restrict then minimize_frontier m ~reach frontier
        else frontier
      in
      let img = image ~tuning enc fmin in
      let fresh = Bdd.dand m img (Bdd.dnot m reach) in
      Obs.tick iterations_c;
      if Bdd.is_zero fresh then finish reach frontier
      else begin
        let reach' = Bdd.dor m reach fresh in
        Bdd.ref m reach';
        Bdd.ref m fresh;
        Bdd.deref m reach;
        Bdd.deref m frontier;
        Bdd.maybe_gc m;
        loop (i + 1) reach' fresh
      end
  in
  let init = Enc.init_bdd enc in
  Bdd.ref m init;
  Bdd.ref m init;
  loop 0 init init

(* States with at least one successor. A relational model built from
   conjoined constraints can accidentally be partial (contradictory
   primed requirements); [deadlocked enc reach] returns the reachable
   states with no successor, which a well-formed model should make
   empty. *)
let deadlocked enc reach =
  let m = Enc.mgr enc in
  let has_succ = Bdd.exists m (Enc.nxt_set enc) (Enc.trans_bdd enc) in
  Bdd.dand m reach (Bdd.dnot m has_succ)

let check ?(max_iterations = max_int) ?(cancel = fun () -> false)
    ?(obs = Obs.disabled) ?(tuning = default_tuning) enc ~bad =
  let m = Enc.mgr enc in
  prepare enc tuning;
  let iterations_c = Obs.counter obs "reach.iterations" in
  let peak_g = Obs.gauge obs "reach.peak_nodes" in
  let frontier_g = Obs.gauge obs "reach.frontier_nodes" in
  if tuning.partitioned then
    Obs.set_max obs "reach.partitions" (Enc.n_partitions enc);
  let bad_bdd =
    Bdd.dand m (Enc.pred enc bad) (Enc.valid enc ~primed:false)
  in
  Bdd.ref m bad_bdd;
  let init = Enc.init_bdd enc in
  let peak = ref (Bdd.size init) in
  let note d = peak := max !peak (Bdd.size d) in
  let finish_stats iterations reachable =
    {
      iterations;
      peak_nodes = !peak;
      reachable_states =
        Bdd.sat_count m ~nvars:(2 * Enc.nbits enc) reachable
        /. (2.0 ** float_of_int (Enc.nbits enc));
      (* The state space uses only even BDD variables; each odd
         (primed) variable doubles the raw count, hence the division. *)
    }
  in
  (* Every ring and the current reached set stay registered as GC
     roots for the whole run (the rings are the counterexample
     extractor's input); [finish] unregisters them so the manager is
     left clean for the caller. *)
  let finish reach rings result =
    Bdd.deref m reach;
    List.iter (Bdd.deref m) rings;
    Bdd.deref m bad_bdd;
    result
  in
  if not (Bdd.is_zero (Bdd.dand m init bad_bdd)) then begin
    let trace = [| Enc.decode_state enc (Bdd.dand m init bad_bdd) |] in
    Bdd.deref m bad_bdd;
    Unsafe (trace, finish_stats 0 init)
  end
  else begin
    let rec loop i reach frontier rings =
      let cancelled = cancel () in
      if i >= max_iterations || cancelled then begin
        if cancelled then Obs.instant obs "reach.cancelled";
        finish reach rings (Depth_exhausted (finish_stats i reach))
      end
      else begin
        let sp = Obs.start obs "reach.image" in
        let fmin =
          if tuning.use_restrict then minimize_frontier m ~reach frontier
          else frontier
        in
        let img = image ~tuning enc fmin in
        let fresh = Bdd.dand m img (Bdd.dnot m reach) in
        Obs.tick iterations_c;
        (* [Bdd.size] walks the diagram: only pay for it when someone
           is listening. *)
        if Obs.enabled obs then begin
          Obs.record frontier_g (Bdd.size fresh);
          Obs.set_max obs "bdd.live_nodes" (Bdd.live_nodes m)
        end;
        Obs.stop sp;
        if Bdd.is_zero fresh then
          finish reach rings (Safe (finish_stats i reach))
        else begin
          let reach' = Bdd.dor m reach fresh in
          note reach';
          Obs.record peak_g !peak;
          let rings' = fresh :: rings in
          Bdd.ref m reach';
          Bdd.ref m fresh;
          Bdd.deref m reach;
          (* Safepoint: everything live — the encoder's caches and
             cluster diagrams, [bad_bdd], the new reached set and
             every ring — is rooted here. *)
          Bdd.maybe_gc m;
          if not (Bdd.is_zero (Bdd.dand m fresh bad_bdd)) then
            finish reach' rings'
              (Unsafe
                 ( Obs.with_span obs "reach.extract_trace" (fun () ->
                       extract_trace ~tuning enc rings' bad_bdd),
                   finish_stats (i + 1) reach' ))
          else loop (i + 1) reach' fresh rings'
        end
      end
    in
    Bdd.ref m init;
    Bdd.ref m init;
    loop 0 init init [ init ]
  end
