(** Symbolic invariant checking by forward reachability.

    Computes the reachable states as a BDD fixpoint and checks a safety
    property of the form "no reachable state satisfies [bad]". On
    failure, a shortest counterexample trace is extracted by walking the
    onion rings of the fixpoint backwards, exactly as SMV does. *)

type stats = {
  iterations : int;  (** image steps performed *)
  peak_nodes : int;  (** largest BDD (reachable set) seen *)
  reachable_states : float;  (** |reachable| if the run completed *)
}

type result =
  | Safe of stats
  | Unsafe of Model.state array * stats
  | Depth_exhausted of stats
      (** gave up at [max_iterations] without proving or refuting *)

let image enc frontier =
  let m = Enc.mgr enc in
  let t = Enc.trans_bdd enc in
  Enc.rename_nxt_to_cur enc (Bdd.and_exists m (Enc.cur_set enc) t frontier)

let preimage enc set =
  let m = Enc.mgr enc in
  let t = Enc.trans_bdd enc in
  Bdd.and_exists m (Enc.nxt_set enc) t (Enc.rename_cur_to_nxt enc set)

(* Rebuild a concrete trace from the rings [r0; ...; rk] where the last
   ring intersects [bad]. *)
let extract_trace enc rings bad_bdd =
  let m = Enc.mgr enc in
  match rings with
  | [] -> invalid_arg "Reach.extract_trace: no rings"
  | last :: earlier ->
      let s_last = Enc.decode_state enc (Bdd.dand m last bad_bdd) in
      let rec walk state acc = function
        | [] -> state :: acc
        | ring :: rest ->
            let cube = Enc.state_cube enc state in
            let pred_set = Bdd.dand m (preimage enc cube) ring in
            let s = Enc.decode_state enc pred_set in
            walk s (state :: acc) rest
      in
      Array.of_list (walk s_last [] earlier)

(* The full reachable-state set (no property): used by diagnostics such
   as the deadlock-freedom check below. *)
let reachable_set ?(max_iterations = max_int) enc =
  let m = Enc.mgr enc in
  let rec loop i reach frontier =
    if i >= max_iterations then reach
    else
      let img = image enc frontier in
      let fresh = Bdd.dand m img (Bdd.dnot m reach) in
      if Bdd.is_zero fresh then reach
      else loop (i + 1) (Bdd.dor m reach fresh) fresh
  in
  let init = Enc.init_bdd enc in
  loop 0 init init

(* States with at least one successor. A relational model built from
   conjoined constraints can accidentally be partial (contradictory
   primed requirements); [deadlocked enc reach] returns the reachable
   states with no successor, which a well-formed model should make
   empty. *)
let deadlocked enc reach =
  let m = Enc.mgr enc in
  let has_succ = Bdd.exists m (Enc.nxt_set enc) (Enc.trans_bdd enc) in
  Bdd.dand m reach (Bdd.dnot m has_succ)

let check ?(max_iterations = max_int) ?(cancel = fun () -> false)
    ?(obs = Obs.disabled) enc ~bad =
  let m = Enc.mgr enc in
  let iterations_c = Obs.counter obs "reach.iterations" in
  let peak_g = Obs.gauge obs "reach.peak_nodes" in
  let frontier_g = Obs.gauge obs "reach.frontier_nodes" in
  let bad_bdd =
    Bdd.dand m (Enc.pred enc bad) (Enc.valid enc ~primed:false)
  in
  let init = Enc.init_bdd enc in
  let peak = ref (Bdd.size init) in
  let note d = peak := max !peak (Bdd.size d) in
  let finish_stats iterations reachable =
    {
      iterations;
      peak_nodes = !peak;
      reachable_states =
        Bdd.sat_count m ~nvars:(2 * Enc.nbits enc) reachable
        /. (2.0 ** float_of_int (Enc.nbits enc));
      (* The state space uses only even BDD variables; each odd
         (primed) variable doubles the raw count, hence the division. *)
    }
  in
  if not (Bdd.is_zero (Bdd.dand m init bad_bdd)) then
    let trace = [| Enc.decode_state enc (Bdd.dand m init bad_bdd) |] in
    Unsafe (trace, finish_stats 0 init)
  else begin
    let rec loop i reach frontier rings =
      if i >= max_iterations || cancel () then begin
        if cancel () then Obs.instant obs "reach.cancelled";
        Depth_exhausted (finish_stats i reach)
      end
      else begin
        let sp = Obs.start obs "reach.image" in
        let img = image enc frontier in
        let fresh = Bdd.dand m img (Bdd.dnot m reach) in
        Obs.tick iterations_c;
        (* [Bdd.size] walks the diagram: only pay for it when someone
           is listening. *)
        if Obs.enabled obs then Obs.record frontier_g (Bdd.size fresh);
        Obs.stop sp;
        if Bdd.is_zero fresh then Safe (finish_stats i reach)
        else begin
          let reach' = Bdd.dor m reach fresh in
          note reach';
          Obs.record peak_g !peak;
          let rings' = fresh :: rings in
          if not (Bdd.is_zero (Bdd.dand m fresh bad_bdd)) then
            Unsafe
              ( Obs.with_span obs "reach.extract_trace" (fun () ->
                    extract_trace enc rings' bad_bdd),
                finish_stats (i + 1) reach' )
          else loop (i + 1) reach' fresh rings'
        end
      end
    in
    loop 0 init init [ init ]
  end
