(** Symbolic invariant checking by forward reachability.

    Computes the reachable states as a BDD fixpoint and checks a safety
    property of the form "no reachable state satisfies [bad]". On
    failure, a shortest counterexample trace is extracted — by walking
    the onion rings of the fixpoint backwards (BFS-shaped strategies,
    exactly as SMV does), or by rerunning a ring-keeping BFS when the
    forward exploration was not breadth-first.

    The image computation is the hot path of the whole Section 5
    matrix, so it is tunable along several axes (see {!tuning}):
    conjunctively partitioned transition relations with early
    quantification instead of one monolithic relprod, Coudert–Madre
    [restrict] minimization of the frontier against the reached set,
    watermark-triggered BDD node reclamation and dynamic variable
    reordering between iterations, frontier-sliced image computation
    across OCaml domains, and a pluggable fixpoint strategy. *)

type stats = {
  iterations : int;
      (** image steps performed (outer sweeps under [Saturation]) *)
  peak_nodes : int;  (** largest BDD (reachable set) seen *)
  reachable_states : float;  (** |reachable| if the run completed *)
}

type result =
  | Safe of stats
  | Unsafe of Model.state array * stats
  | Depth_exhausted of stats
      (** gave up at [max_iterations] without proving or refuting *)

type strategy = Bfs | Chaining | Saturation

type tuning = {
  partitioned : bool;
  use_restrict : bool;
  gc_watermark : int;
  cluster_limit : int;
  strategy : strategy;
  par_domains : int;
  reorder_watermark : int;
}

let default_tuning =
  {
    partitioned = true;
    use_restrict = true;
    gc_watermark = 250_000;
    cluster_limit = Enc.default_cluster_limit;
    strategy = Bfs;
    par_domains = 1;
    reorder_watermark = 0;
  }

let monolithic_tuning =
  {
    partitioned = false;
    use_restrict = false;
    gc_watermark = 0;
    cluster_limit = Enc.default_cluster_limit;
    strategy = Bfs;
    par_domains = 1;
    reorder_watermark = 0;
  }

(* One-step successors: rename(exists cur (T /\ frontier)). The
   partitioned path folds the frontier through the cluster schedule,
   quantifying each current-copy variable at the last cluster that
   mentions it so the intermediate products never carry the full
   variable set. Always sequential — the multi-domain path below slices
   the frontier and calls this per slice in worker managers. *)
let image ?(tuning = default_tuning) enc frontier =
  let m = Enc.mgr enc in
  if tuning.partitioned then begin
    let s = Enc.schedule ~cluster_limit:tuning.cluster_limit enc in
    let acc = ref (Bdd.exists m s.Enc.img_free frontier) in
    Array.iteri
      (fun i part -> acc := Bdd.and_exists m s.Enc.img_sched.(i) !acc part)
      s.Enc.parts;
    Enc.rename_nxt_to_cur enc !acc
  end
  else
    let t = Enc.trans_bdd enc in
    Enc.rename_nxt_to_cur enc (Bdd.and_exists m (Enc.cur_set enc) t frontier)

let preimage ?(tuning = default_tuning) enc set =
  let m = Enc.mgr enc in
  if tuning.partitioned then begin
    let s = Enc.schedule ~cluster_limit:tuning.cluster_limit enc in
    let acc =
      ref (Bdd.exists m s.Enc.pre_free (Enc.rename_cur_to_nxt enc set))
    in
    Array.iteri
      (fun i part -> acc := Bdd.and_exists m s.Enc.pre_sched.(i) !acc part)
      s.Enc.parts;
    !acc
  end
  else
    let t = Enc.trans_bdd enc in
    Bdd.and_exists m (Enc.nxt_set enc) t (Enc.rename_cur_to_nxt enc set)

(* ------------------------------------------------------------------ *)
(* Multi-domain image: slice the frontier into disjoint pieces by the
   values of a few state bits, compute each piece's image in a worker
   domain with its own manager and encoder, and OR the transferred
   results. Exact because the image distributes over union and the
   slices partition the frontier; deterministic because every worker
   encoder is built from the same model with the same layout.

   Thread-safety rests on a strict phase discipline. While worker
   domains run, the main manager is read-only (workers [transfer] their
   slice in, which only reads the main manager's immutable-during-the-
   window node fields); transfers back into the main manager happen on
   the main domain after every worker has been joined; each worker
   manager is touched by exactly one domain at a time. Worker-side GC
   and reordering run at the start of a worker's round, after the main
   domain is done reading the previous round's results. *)

type worker = {
  wenc : Enc.t;
  wtuning : tuning;  (** sequential tuning for the in-worker image *)
  mutable wlast : Bdd.t list;  (** rooted results the main side read *)
}

type par = { workers : worker array; slice_bits : int }

let make_par enc tuning =
  if tuning.par_domains <= 1 then None
  else begin
    let seq = { tuning with par_domains = 1 } in
    let workers =
      Array.init tuning.par_domains (fun _ ->
          let wm = Bdd.create_manager () in
          let wenc = Enc.create wm (Enc.model enc) in
          Bdd.set_gc_watermark wm tuning.gc_watermark;
          if tuning.reorder_watermark > 0 then
            Bdd.set_reorder_watermark wm tuning.reorder_watermark;
          if tuning.partitioned then
            ignore (Enc.schedule ~cluster_limit:tuning.cluster_limit wenc)
          else ignore (Enc.trans_bdd wenc);
          { wenc; wtuning = seq; wlast = [] })
    in
    let rec bits k =
      if 1 lsl k >= tuning.par_domains then k else bits (k + 1)
    in
    Some { workers; slice_bits = bits 0 }
  end

let par_image enc par tuning frontier =
  let m = Enc.mgr enc in
  let seq = { tuning with par_domains = 1 } in
  let cur_support =
    List.filter (fun v -> v land 1 = 0) (Bdd.support frontier)
  in
  let k = min par.slice_bits (List.length cur_support) in
  if k = 0 then image ~tuning:seq enc frontier
  else begin
    let vars = Array.of_list (List.filteri (fun i _ -> i < k) cur_support) in
    let slices =
      List.init (1 lsl k) (fun a ->
          let s = ref frontier in
          Array.iteri
            (fun j v ->
              let lit =
                if (a lsr j) land 1 = 1 then Bdd.var m v else Bdd.nvar m v
              in
              s := Bdd.dand m !s lit)
            vars;
          !s)
      |> List.filter (fun s -> not (Bdd.is_zero s))
    in
    match slices with
    | [] -> Bdd.zero
    | [ _ ] ->
        (* One populated slice: nothing to parallelize. *)
        image ~tuning:seq enc frontier
    | _ ->
        let nw = Array.length par.workers in
        let buckets = Array.make nw [] in
        List.iteri
          (fun i s -> buckets.(i mod nw) <- s :: buckets.(i mod nw))
          slices;
        let tasks =
          Array.to_list
            (Array.mapi
               (fun wi bucket ->
                 if bucket = [] then None
                 else
                   let w = par.workers.(wi) in
                   Some
                     ( w,
                       Domain.spawn (fun () ->
                           let wm = Enc.mgr w.wenc in
                           (* Housekeeping first: the previous round's
                              results were already read back by the
                              main domain. *)
                           List.iter (Bdd.deref wm) w.wlast;
                           w.wlast <- [];
                           Bdd.maybe_gc wm;
                           Bdd.maybe_reorder wm;
                           let slice =
                             List.fold_left
                               (fun acc s ->
                                 Bdd.dor wm acc (Bdd.transfer m wm s))
                               Bdd.zero bucket
                           in
                           let r = image ~tuning:w.wtuning w.wenc slice in
                           Bdd.ref wm r;
                           w.wlast <- [ r ];
                           r) ))
               buckets)
          |> List.filter_map Fun.id
        in
        List.fold_left
          (fun acc (w, dom) ->
            let r = Domain.join dom in
            Bdd.dor m acc (Bdd.transfer (Enc.mgr w.wenc) m r))
          Bdd.zero tasks
  end

let do_image enc par tuning operand =
  match par with
  | Some p -> par_image enc p tuning operand
  | None -> image ~tuning enc operand

(* Frontier minimization (Coudert–Madre): any set F' with
   frontier <= F' <= reach computes the same fixpoint ring by ring —
   the extra states are already reached, so image(F') \ reach still
   contains exactly the states at the next BFS distance. [restrict]
   picks such an F' with (usually) fewer nodes by treating
   reach /\ ~frontier as a don't-care region; a size guard keeps the
   original when simplification back-fires. *)
let minimize_frontier m ~reach frontier =
  let care = Bdd.dor m frontier (Bdd.dnot m reach) in
  let r = Bdd.restrict m frontier care in
  if Bdd.size r < Bdd.size frontier then r else frontier

(* Rebuild a concrete trace from the rings [r0; ...; rk] where the last
   ring intersects [bad]. *)
let extract_trace ?(tuning = default_tuning) enc rings bad_bdd =
  let m = Enc.mgr enc in
  match rings with
  | [] -> invalid_arg "Reach.extract_trace: no rings"
  | last :: earlier ->
      let s_last = Enc.decode_state enc (Bdd.dand m last bad_bdd) in
      let rec walk state acc = function
        | [] -> state :: acc
        | ring :: rest ->
            let cube = Enc.state_cube enc state in
            let pred_set = Bdd.dand m (preimage ~tuning enc cube) ring in
            let s = Enc.decode_state enc pred_set in
            walk s (state :: acc) rest
      in
      Array.of_list (walk s_last [] earlier)

(* Shortest trace without forward BFS rings (the [Saturation] strategy
   explores guard-by-guard, so its ring structure carries no distance
   information). Rerun a plain breadth-first pass from [init], keeping
   onion rings, until a ring meets [bad]; then walk the rings exactly
   as {!extract_trace} does. The rerun costs a handful of extra image
   steps but its operands are BFS frontiers — the well-behaved shape
   the cluster schedule is tuned for. (A backward BFS from [bad] is
   the textbook alternative, but its preimages range over the whole
   valid state space, where unreachable predecessor sets blow up on
   exactly the models saturation targets.) Only called when [bad] is
   known reachable, hence guaranteed to terminate at the true shortest
   depth. *)
let extract_trace_rerun ?(tuning = default_tuning) enc ~init bad_bdd =
  let m = Enc.mgr enc in
  let seq = { tuning with par_domains = 1 } in
  let rec grow rings reach frontier =
    if not (Bdd.is_zero (Bdd.dand m frontier bad_bdd)) then rings
    else
      let operand =
        if seq.use_restrict then minimize_frontier m ~reach frontier
        else frontier
      in
      let img = image ~tuning:seq enc operand in
      let fresh = Bdd.dand m img (Bdd.dnot m reach) in
      grow (fresh :: rings) (Bdd.dor m reach fresh) fresh
  in
  let rings = grow [ init ] init init in
  extract_trace ~tuning:seq enc rings bad_bdd

(* Prebuild the relation (monolithic or partitioned) so its
   construction cost is not attributed to the first image span, and so
   the cluster diagrams are rooted (by Enc) before any sweep. *)
let prepare enc tuning =
  let m = Enc.mgr enc in
  Bdd.set_gc_watermark m tuning.gc_watermark;
  if tuning.reorder_watermark > 0 then
    Bdd.set_reorder_watermark m tuning.reorder_watermark;
  if tuning.partitioned then
    ignore (Enc.schedule ~cluster_limit:tuning.cluster_limit enc)
  else ignore (Enc.trans_bdd enc)

(* Guards for the saturation sweeps: the value predicates of one
   state variable. They cover every (valid) state, so folding local
   fixpoints over all guards until nothing changes computes the same
   global fixpoint; each local step is an exact image of
   already-reached states, so the strategy is sound over the
   conjunctive cluster schedule (which cannot be applied per-cluster).

   The choice of variable decides whether the sweep order matches the
   model's structure or fights it: we want the global synchronizer (in
   a time-triggered model, the slot counter), whose value predicates
   slice every frontier along the round structure. Generic proxy: the
   variable whose bits are mentioned by the most transition conjuncts,
   ties broken toward smaller domains (fewer, coarser guards) and then
   declaration order. *)
(* Bound on consecutive local image rounds per guard within one sweep;
   see the worklist loop in [check]. *)
let sat_local_passes = 1

let saturation_guards enc =
  let model = Enc.model enc in
  let mentioned_bits =
    Enc.trans_parts enc
    |> List.map (fun d ->
           Bdd.support d |> List.map (fun v -> v / 2)
           |> List.sort_uniq compare)
  in
  let score name =
    let ve = Enc.var_enc enc name in
    let mine b = b >= ve.Enc.first_bit && b < ve.Enc.first_bit + ve.Enc.nbits in
    List.length (List.filter (List.exists mine) mentioned_bits)
  in
  let candidates =
    List.filter
      (fun (_, d) -> List.length (Model.domain_values d) >= 2)
      model.Model.vars
  in
  match candidates with
  | [] -> [||]
  | first :: rest ->
      let best =
        List.fold_left
          (fun (bn, bd, bs) (n, d) ->
            let s = score n in
            let smaller =
              List.length (Model.domain_values d)
              < List.length (Model.domain_values bd)
            in
            if s > bs || (s = bs && smaller) then (n, d, s) else (bn, bd, bs))
          (let n, d = first in
           (n, d, score n))
          rest
      in
      let name, dom, _ = best in
      Model.domain_values dom
      |> List.map (fun value ->
             Enc.pred enc (Expr.Eq (Expr.Cur name, Expr.Const value)))
      |> Array.of_list

(* The full reachable-state set (no property): used by diagnostics such
   as the deadlock-freedom check below and by the CTL checker. On
   cancellation the set computed so far (a lower bound) is returned.
   Note for GC users: the returned diagram is not left registered as a
   root. *)
let reachable_set ?(max_iterations = max_int) ?(cancel = fun () -> false)
    ?(obs = Obs.disabled) ?(tuning = default_tuning) enc =
  let m = Enc.mgr enc in
  prepare enc tuning;
  let par = make_par enc tuning in
  let iterations_c = Obs.counter obs "reach.iterations" in
  let finish reach frontier =
    Bdd.deref m reach;
    Bdd.deref m frontier;
    reach
  in
  let operand_of reach frontier =
    match tuning.strategy with
    | Chaining -> reach
    | Bfs | Saturation ->
        (* Saturation adds states guard-by-guard inside [check]'s
           property loop; for the bare fixpoint its sweeps and plain
           BFS compute the same set, so share the frontier loop. *)
        if tuning.use_restrict then minimize_frontier m ~reach frontier
        else frontier
  in
  let rec loop i reach frontier =
    let cancelled = cancel () in
    if i >= max_iterations || cancelled then begin
      if cancelled then Obs.instant obs "reach.cancelled";
      finish reach frontier
    end
    else
      let img = do_image enc par tuning (operand_of reach frontier) in
      let fresh = Bdd.dand m img (Bdd.dnot m reach) in
      Obs.tick iterations_c;
      if Bdd.is_zero fresh then finish reach frontier
      else begin
        let reach' = Bdd.dor m reach fresh in
        Bdd.ref m reach';
        Bdd.ref m fresh;
        Bdd.deref m reach;
        Bdd.deref m frontier;
        Bdd.maybe_gc m;
        Bdd.maybe_reorder m;
        loop (i + 1) reach' fresh
      end
  in
  let init = Enc.init_bdd enc in
  Bdd.ref m init;
  Bdd.ref m init;
  loop 0 init init

(* States with at least one successor. A relational model built from
   conjoined constraints can accidentally be partial (contradictory
   primed requirements); [deadlocked enc reach] returns the reachable
   states with no successor, which a well-formed model should make
   empty. *)
let deadlocked enc reach =
  let m = Enc.mgr enc in
  let has_succ = Bdd.exists m (Enc.nxt_set enc) (Enc.trans_bdd enc) in
  Bdd.dand m reach (Bdd.dnot m has_succ)

let check ?(max_iterations = max_int) ?(cancel = fun () -> false)
    ?(obs = Obs.disabled) ?(tuning = default_tuning) enc ~bad =
  let m = Enc.mgr enc in
  prepare enc tuning;
  let par = make_par enc tuning in
  let iterations_c = Obs.counter obs "reach.iterations" in
  let peak_g = Obs.gauge obs "reach.peak_nodes" in
  let frontier_g = Obs.gauge obs "reach.frontier_nodes" in
  if tuning.partitioned then
    Obs.set_max obs "reach.partitions" (Enc.n_partitions enc);
  Obs.set_max obs "reach.image_domains" (max 1 tuning.par_domains);
  let bad_bdd =
    Bdd.dand m (Enc.pred enc bad) (Enc.valid enc ~primed:false)
  in
  Bdd.ref m bad_bdd;
  let init = Enc.init_bdd enc in
  let peak = ref (Bdd.size init) in
  let note d = peak := max !peak (Bdd.size d) in
  let finish_stats iterations reachable =
    {
      iterations;
      peak_nodes = !peak;
      reachable_states =
        Bdd.sat_count m ~nvars:(2 * Enc.nbits enc) reachable
        /. (2.0 ** float_of_int (Enc.nbits enc));
      (* The state space uses only even BDD variables; each odd
         (primed) variable doubles the raw count, hence the division. *)
    }
  in
  if not (Bdd.is_zero (Bdd.dand m init bad_bdd)) then begin
    let trace = [| Enc.decode_state enc (Bdd.dand m init bad_bdd) |] in
    Bdd.deref m bad_bdd;
    Unsafe (trace, finish_stats 0 init)
  end
  else
    match tuning.strategy with
    | Bfs | Chaining ->
        (* Ring-structured exploration. Both strategies produce the
           same rings: with R_k the reached set and F_k the k-th ring,
           image(R_k) \ R_k = image(F_k) \ R_k (states entered from
           R_{k-1} are already in R_k), so feeding the full reached set
           (Chaining) or just the frontier (Bfs) to the fold yields
           identical fresh sets, iteration counts, and traces. *)
        (* Every ring and the current reached set stay registered as GC
           roots for the whole run (the rings are the counterexample
           extractor's input); [finish] unregisters them so the manager
           is left clean for the caller. *)
        let finish reach rings result =
          Bdd.deref m reach;
          List.iter (Bdd.deref m) rings;
          Bdd.deref m bad_bdd;
          result
        in
        let rec loop i reach frontier rings =
          let cancelled = cancel () in
          if i >= max_iterations || cancelled then begin
            if cancelled then Obs.instant obs "reach.cancelled";
            finish reach rings (Depth_exhausted (finish_stats i reach))
          end
          else begin
            let sp = Obs.start obs "reach.image" in
            let operand =
              match tuning.strategy with
              | Chaining -> reach
              | _ ->
                  if tuning.use_restrict then
                    minimize_frontier m ~reach frontier
                  else frontier
            in
            let img = do_image enc par tuning operand in
            let fresh = Bdd.dand m img (Bdd.dnot m reach) in
            Obs.tick iterations_c;
            (* [Bdd.size] walks the diagram: only pay for it when
               someone is listening. *)
            if Obs.enabled obs then begin
              Obs.record frontier_g (Bdd.size fresh);
              Obs.set_max obs "bdd.live_nodes" (Bdd.live_nodes m)
            end;
            Obs.stop sp;
            if Bdd.is_zero fresh then
              finish reach rings (Safe (finish_stats i reach))
            else begin
              let reach' = Bdd.dor m reach fresh in
              note reach';
              Obs.record peak_g !peak;
              let rings' = fresh :: rings in
              Bdd.ref m reach';
              Bdd.ref m fresh;
              Bdd.deref m reach;
              (* Safepoint: everything live — the encoder's caches and
                 cluster diagrams, [bad_bdd], the new reached set and
                 every ring — is rooted here. *)
              Bdd.maybe_gc m;
              Bdd.maybe_reorder m;
              if not (Bdd.is_zero (Bdd.dand m fresh bad_bdd)) then
                finish reach' rings'
                  (Unsafe
                     ( Obs.with_span obs "reach.extract_trace" (fun () ->
                           extract_trace ~tuning enc rings' bad_bdd),
                       finish_stats (i + 1) reach' ))
              else loop (i + 1) reach' fresh rings'
            end
          end
        in
        Bdd.ref m init;
        Bdd.ref m init;
        loop 0 init init [ init ]
    | Saturation ->
        (* Worklist saturation. Each guard [j] owns a pending set: the
           reached states in its slice whose successors have not been
           computed yet. One outer sweep visits each guard in turn and
           drains its pending set locally — states re-entering the
           same guard are expanded immediately (up to
           [sat_local_passes] rounds, so a slice that keeps feeding
           itself cannot run arbitrarily far ahead of the rest of the
           space: deep lone-slice excursions build jagged
           intermediate sets that blow up the relational product),
           states crossing into another guard's slice are queued
           there for later in the sweep. Only pending states are ever
           imaged, so the total image work is comparable to BFS; the
           exploration order is not breadth-first, which is the
           point. [iterations] counts outer sweeps, so it is not
           comparable with the BFS depth — verdicts and trace lengths
           are, and the trace comes from a ring-keeping BFS rerun
           so it is still shortest. *)
        let guards = saturation_guards enc in
        (* Guards and pending sets live across every gc/reorder
           safepoint below. *)
        Array.iter (Bdd.ref m) guards;
        let pending =
          Array.map
            (fun g ->
              let p = Bdd.dand m init g in
              Bdd.ref m p;
              p)
            guards
        in
        let set_pending j p =
          Bdd.ref m p;
          Bdd.deref m pending.(j);
          pending.(j) <- p
        in
        let reach = ref init in
        Bdd.ref m !reach;
        let finish result =
          Bdd.deref m !reach;
          Array.iter (Bdd.deref m) guards;
          Array.iter (Bdd.deref m) pending;
          Bdd.deref m bad_bdd;
          result
        in
        let unsafe sweeps =
          let stats = finish_stats sweeps !reach in
          let trace =
            Obs.with_span obs "reach.extract_trace" (fun () ->
                extract_trace_rerun ~tuning enc ~init bad_bdd)
          in
          finish (Unsafe (trace, stats))
        in
        let exception Hit_bad of int in
        let exception Stopped of int * bool in
        (try
           let sweeps = ref 0 in
           let any_pending () =
             Array.exists (fun p -> not (Bdd.is_zero p)) pending
           in
           while any_pending () do
             if !sweeps >= max_iterations then
               raise (Stopped (!sweeps, false));
             if cancel () then raise (Stopped (!sweeps, true));
             let sp = Obs.start obs "reach.image" in
             Array.iteri
               (fun j guard ->
                 let local = ref 0 in
                 while
                   (not (Bdd.is_zero pending.(j)))
                   && !local < sat_local_passes
                 do
                   incr local;
                   let operand =
                     if tuning.use_restrict then
                       minimize_frontier m ~reach:!reach pending.(j)
                     else pending.(j)
                   in
                   let img = do_image enc par tuning operand in
                   let fresh = Bdd.dand m img (Bdd.dnot m !reach) in
                   if Bdd.is_zero fresh then set_pending j Bdd.zero
                   else begin
                     let reach' = Bdd.dor m !reach fresh in
                     note reach';
                     Bdd.ref m reach';
                     Bdd.ref m fresh;
                     Bdd.deref m !reach;
                     reach := reach';
                     (* The imaged states are consumed. Route the new
                        ones to their slices: re-entrants to this
                        guard's pending set (drained next round of this
                        local loop), the rest to the other guards'
                        (drained later in the sweep, or next sweep). *)
                     set_pending j (Bdd.dand m fresh guard);
                     Array.iteri
                       (fun k gk ->
                         if k <> j then begin
                           let add = Bdd.dand m fresh gk in
                           if not (Bdd.is_zero add) then
                             set_pending k (Bdd.dor m pending.(k) add)
                         end)
                       guards;
                     if not (Bdd.is_zero (Bdd.dand m fresh bad_bdd)) then
                       begin
                         Bdd.deref m fresh;
                         raise (Hit_bad (!sweeps + 1))
                       end;
                     (* Safepoint: reach, pending, guards, bad_bdd and
                        the encoder caches are all rooted here. *)
                     Bdd.deref m fresh;
                     Bdd.maybe_gc m;
                     Bdd.maybe_reorder m
                   end
                 done)
               guards;
             Obs.stop sp;
             Obs.tick iterations_c;
             incr sweeps;
             if Obs.enabled obs then begin
               Obs.record peak_g !peak;
               Obs.set_max obs "bdd.live_nodes" (Bdd.live_nodes m)
             end
           done;
           finish (Safe (finish_stats !sweeps !reach))
         with
        | Hit_bad sweeps -> unsafe sweeps
        | Stopped (sweeps, cancelled) ->
            if cancelled then Obs.instant obs "reach.cancelled";
            finish (Depth_exhausted (finish_stats sweeps !reach)))
