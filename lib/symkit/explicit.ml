(** Explicit-state breadth-first reachability.

    Generic over the state type: the caller supplies initial states, a
    successor function, and a bad-state predicate. Used both as an
    independent cross-check of the symbolic engines (on an executable
    encoding of the same model) and by the simulator's exhaustive
    scenario exploration. BFS guarantees that a returned counterexample
    is of minimal length. *)

type 'a outcome =
  | Violation of 'a list  (** trace from an initial state to a bad state *)
  | Exhausted of { states : int; depth : int }
      (** full state space explored, no violation *)
  | Bounded of { states : int; depth : int }
      (** search stopped at a resource bound without a verdict *)

let search ?(max_states = max_int) ?(max_depth = max_int)
    ?(cancel = fun () -> false) ?(obs = Obs.disabled) ~initial ~next ~bad () =
  let states_c = Obs.counter obs "explicit.states" in
  let transitions_c = Obs.counter obs "explicit.transitions" in
  let depth_g = Obs.gauge obs "explicit.depth" in
  (* One span per BFS frontier: pops are in depth order, so a frontier
     ends exactly when the first state of the next depth is popped. *)
  let frontier_sp = ref Obs.null_span in
  let frontier_depth = ref (-1) in
  let enter_frontier d =
    if Obs.enabled obs && d > !frontier_depth then begin
      Obs.stop !frontier_sp;
      frontier_sp :=
        Obs.start obs ~args:[ ("depth", string_of_int d) ] "explicit.frontier";
      frontier_depth := d
    end
  in
  let parent : ('a, 'a option) Hashtbl.t = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let trace_to s =
    let rec go acc s =
      match Hashtbl.find parent s with
      | None -> s :: acc
      | Some p -> go (s :: acc) p
    in
    go [] s
  in
  let truncated = ref false in
  let enqueue p s =
    if not (Hashtbl.mem parent s) then
      if Hashtbl.length parent >= max_states then truncated := true
      else begin
        Hashtbl.add parent s p;
        Queue.add s queue
      end
  in
  List.iter (fun s -> enqueue None s) initial;
  (match List.find_opt bad initial with
  | Some s -> Some (Violation [ s ])
  | None -> None)
  |> function
  | Some v -> v
  | None ->
      let depth_of = Hashtbl.create 4096 in
      List.iter (fun s -> Hashtbl.replace depth_of s 0) initial;
      let result = ref None in
      let cancelled = ref false in
      while !result = None && (not !cancelled) && not (Queue.is_empty queue) do
        if cancel () then begin
          Obs.instant obs "explicit.cancelled";
          cancelled := true;
          truncated := true
        end
        else begin
          let s = Queue.pop queue in
          let d = try Hashtbl.find depth_of s with Not_found -> 0 in
          enter_frontier d;
          Obs.tick states_c;
          Obs.record depth_g d;
          if d < max_depth then
            List.iter
              (fun s' ->
                Obs.tick transitions_c;
                if !result = None && not (Hashtbl.mem parent s') then begin
                  Hashtbl.add parent s' (Some s);
                  Hashtbl.replace depth_of s' (d + 1);
                  if bad s' then result := Some (trace_to s')
                  else if Hashtbl.length parent < max_states then
                    Queue.add s' queue
                  else truncated := true
                end)
              (next s)
          else truncated := true
        end
      done;
      Obs.stop !frontier_sp;
      let states = Hashtbl.length parent in
      let depth =
        Hashtbl.fold (fun _ d acc -> max d acc) depth_of 0
      in
      (match !result with
      | Some trace -> Violation trace
      | None ->
          if !truncated then Bounded { states; depth }
          else Exhausted { states; depth })
