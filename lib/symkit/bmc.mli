(** SAT-based bounded model checking.

    Transition constraints are first compiled to BDDs over the
    encoder's bit space (reusing the verified symbolic compiler), then
    each BDD is translated to CNF with one Tseitin variable per BDD
    node, instantiated per unrolling step. The bad-state predicate at
    depth [k] is asserted as an assumption, so one incremental solver
    instance serves every depth — and, via {!check_session}, every
    {e query}: a session keeps its unrolling, its learned clauses and a
    per-property memo across requests, which is what the service tier's
    warm session pool ([lib/sessions]) builds on. *)

type result =
  | Counterexample of Model.state array
  | No_counterexample of int option
      (** no violation up to (and including) this depth; [None] when
          cancelled before depth 0 completed — an explicitly vacuous
          claim, replacing the old magic [-1] sentinel *)

type t
(** An incremental unrolling session. *)

val create : ?with_init:bool -> Enc.t -> t
(** Assert step 0: domain validity and (unless [with_init:false], which
    the inductive step of k-induction uses) the initial-state
    constraints. *)

val extend : t -> unit
(** Unroll one more step: fresh bit variables, the transition
    constraints from the previous step, and the new step's validity. *)

val ensure_depth : t -> int -> unit
(** {!extend} until the unrolling covers the given depth. *)

val check_at_current_depth : t -> bad_bdd:Bdd.t -> Model.state array option
(** Is a state satisfying [bad_bdd] (a predicate over current bits)
    reachable in exactly the current depth? Returns the full trace on
    success. *)

val check_session :
  ?max_depth:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> t ->
  bad:Expr.t -> result
(** Query a (possibly warm) session: scan depths upward until a
    counterexample is found or [max_depth] is clean. Depths verified
    clean by {e earlier} queries on this session are answered from the
    per-property memo without touching the solver; the frontier past
    them is solved with every previously learned clause retained, so a
    depth-[k+1] query after a depth-[k] query only pays for the new
    depth. Counterexamples are memoized at their (minimal) depth, so
    verdicts equal what a cold session would answer for the same
    bound. [cancel] is polled once per depth; when it fires, the result
    is {!No_counterexample} of the last completed depth ([None] when
    depth 0 never finished). *)

val check :
  ?max_depth:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> Enc.t ->
  bad:Expr.t -> result
(** Cold-start convenience: {!create} a fresh session and run
    {!check_session} once. [obs] (default {!Obs.disabled}) receives a
    [bmc.solve_depth]/[bmc.unroll] span pair per depth, the [bmc.depth]
    gauge and the solver's [sat.*] counters. *)

val enumerate :
  ?max_depth:int -> ?limit:int -> Enc.t -> bad:Expr.t ->
  Model.state array list
(** Distinct counterexamples at the shortest violating depth, found by
    blocking each trace and re-solving; at most [limit] traces, empty
    when the property holds to the bound. *)

val solver_stats : t -> string

val counters : t -> (string * int) list
(** The session solver's [sat.*] counters (cumulative over the
    session's whole life, not per query — diff two snapshots for
    per-query effort). *)

val conflicts : t -> int
(** Cumulative conflict count — the standard search-effort proxy, used
    by the warm-vs-cold clause-retention tests. *)

val clean_depth : t -> bad:Expr.t -> int
(** The largest depth this session has certified counterexample-free
    for [bad] so far ([-1] when the property was never queried or depth
    0 never finished). A pure memo read — never touches the solver —
    so an interrupted or abandoned run can still report how far it
    got (the service's degraded verdicts). *)

val flush_counters : ?prefix:string -> t -> Obs.t -> unit
(** Add the session solver's [sat.*] counters (optionally name-prefixed)
    to an observability track — called once at the end of a run. *)

(** {1 Typed lower-level access (used by the k-induction engine)}

    This replaces the old [solver : t -> Sat.t] escape hatch: callers
    get fresh literals, clause addition and assumption solving in the
    session's solver, but never the solver itself. *)

val depth : t -> int
(** Current unrolling depth (number of {!extend}s performed). *)

val step_vars : t -> step:int -> int array
(** The SAT variable of every state bit at a step. *)

val assert_pred : t -> step:int -> Bdd.t -> unit
(** Permanently assert a predicate (a BDD over current/primed encoder
    bits, anchored at the step) in the session. *)

val pred_lit : t -> step:int -> Bdd.t -> Sat.lit
(** A literal equivalent to the predicate at the step, for use as an
    assumption. *)

val fresh_lit : t -> Sat.lit
(** A positive literal of a fresh solver variable. *)

val add_clause : t -> Sat.lit list -> unit
(** Add a clause over literals built from {!step_vars}, {!pred_lit} and
    {!fresh_lit}. *)

val solve_assuming : t -> Sat.lit list -> Sat.result
(** Solve the session's clause set under assumptions (learned clauses
    are retained, as with {!Sat.solve}). *)

val decode : ?upto:int -> t -> Model.state array
(** Read back the trace (steps 0..[upto], default the full unrolling)
    after a satisfiable query, from the solver's explicit model
    snapshot. *)
