(** SAT-based bounded model checking.

    Transition constraints are first compiled to BDDs over the
    encoder's bit space (reusing the verified symbolic compiler), then
    each BDD is translated to CNF with one Tseitin variable per BDD
    node, instantiated per unrolling step. The bad-state predicate at
    depth [k] is asserted as an assumption, so one incremental solver
    instance serves every depth. *)

type result =
  | Counterexample of Model.state array
  | No_counterexample of int
      (** no violation up to (and including) this depth *)

type t
(** An incremental unrolling session. *)

val create : ?with_init:bool -> Enc.t -> t
(** Assert step 0: domain validity and (unless [with_init:false], which
    the inductive step of k-induction uses) the initial-state
    constraints. *)

val extend : t -> unit
(** Unroll one more step: fresh bit variables, the transition
    constraints from the previous step, and the new step's validity. *)

val check_at_current_depth : t -> bad_bdd:Bdd.t -> Model.state array option
(** Is a state satisfying [bad_bdd] (a predicate over current bits)
    reachable in exactly the current depth? Returns the full trace on
    success. *)

val check :
  ?max_depth:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> Enc.t ->
  bad:Expr.t -> result
(** Iterate depths [0..max_depth] until a counterexample is found.
    [cancel] is polled once per depth (cooperative cancellation, used
    by the portfolio's engine racing); when it fires, the result is
    {!No_counterexample} of the last {e completed} depth — a sound
    bounded claim, vacuously [-1] when depth 0 never finished. [obs]
    (default {!Obs.disabled}) receives a [bmc.solve_depth]/[bmc.unroll]
    span pair per depth, the [bmc.depth] gauge and the solver's
    [sat.*] counters. *)

val enumerate :
  ?max_depth:int -> ?limit:int -> Enc.t -> bad:Expr.t ->
  Model.state array list
(** Distinct counterexamples at the shortest violating depth, found by
    blocking each trace and re-solving; at most [limit] traces, empty
    when the property holds to the bound. *)

val solver_stats : t -> string

val flush_counters : ?prefix:string -> t -> Obs.t -> unit
(** Add the session solver's [sat.*] counters (optionally name-prefixed)
    to an observability track — called once at the end of a run. *)

(** {1 Lower-level access (used by the k-induction engine)} *)

val depth : t -> int
(** Current unrolling depth (number of {!extend}s performed). *)

val solver : t -> Sat.t
val step_vars : t -> step:int -> int array
(** The SAT variable of every state bit at a step. *)

val assert_pred : t -> step:int -> Bdd.t -> unit
(** Permanently assert a predicate (a BDD over current/primed encoder
    bits, anchored at the step) in the session. *)

val pred_lit : t -> step:int -> Bdd.t -> Sat.lit
(** A literal equivalent to the predicate at the step, for use as an
    assumption. *)

val decode : t -> Model.state array
(** Read back the trace after a satisfiable query. *)
