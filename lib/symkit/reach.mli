(** Symbolic invariant checking by forward reachability.

    Computes the reachable states as a BDD fixpoint and checks a safety
    property of the form "no reachable state satisfies [bad]". On
    failure, a shortest counterexample trace is extracted by walking
    the onion rings of the fixpoint backwards, exactly as SMV does. *)

type stats = {
  iterations : int;  (** image steps performed *)
  peak_nodes : int;  (** largest reachable-set BDD seen *)
  reachable_states : float;  (** |reachable| when the run completed *)
}

type result =
  | Safe of stats
  | Unsafe of Model.state array * stats
      (** shortest trace from an initial state to a bad state *)
  | Depth_exhausted of stats
      (** gave up at [max_iterations] without proving or refuting *)

val image : Enc.t -> Bdd.t -> Bdd.t
(** One-step successors of a set of states (both over current bits). *)

val preimage : Enc.t -> Bdd.t -> Bdd.t
(** One-step predecessors. *)

val reachable_set : ?max_iterations:int -> Enc.t -> Bdd.t
(** The full reachable-state fixpoint (no property). *)

val deadlocked : Enc.t -> Bdd.t -> Bdd.t
(** [deadlocked enc reach] is the subset of [reach] with no successor;
    a well-formed relational model makes it empty. *)

val check :
  ?max_iterations:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> Enc.t ->
  bad:Expr.t -> result
(** [cancel] is polled once per image step (cooperative cancellation,
    used by the portfolio's engine racing); when it returns [true] the
    run stops with {!Depth_exhausted} at the current iteration count.
    [obs] (default {!Obs.disabled}) receives a [reach.image] span per
    fixpoint iteration, the [reach.iterations] counter and the
    [reach.peak_nodes]/[reach.frontier_nodes] gauges. *)
