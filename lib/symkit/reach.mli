(** Symbolic invariant checking by forward reachability.

    Computes the reachable states as a BDD fixpoint and checks a safety
    property of the form "no reachable state satisfies [bad]". On
    failure, a shortest counterexample trace is extracted — by walking
    the onion rings of the fixpoint backwards (BFS-shaped strategies,
    exactly as SMV does), or by rerunning a ring-keeping BFS when the
    forward exploration was not breadth-first. *)

type stats = {
  iterations : int;
      (** image steps performed; under {!Saturation} this counts outer
          sweeps over the guard set, so it is comparable within a
          strategy but not across {!Saturation} and the BFS-shaped
          strategies *)
  peak_nodes : int;  (** largest reachable-set BDD seen *)
  reachable_states : float;  (** |reachable| when the run completed *)
}

type result =
  | Safe of stats
  | Unsafe of Model.state array * stats
      (** shortest trace from an initial state to a bad state *)
  | Depth_exhausted of stats
      (** gave up at [max_iterations] without proving or refuting *)

(** {1 Image-computation tuning}

    The optimizations of the symbolic hot path, individually switchable
    so their effect can be measured (and so a disagreement can be
    bisected): none of them ever changes verdicts or counterexample
    lengths, only time and memory. ({!Saturation} additionally changes
    what {!stats.iterations} counts — see its doc.) *)

type strategy =
  | Bfs
      (** breadth-first: one image of the current frontier per
          iteration, onion rings kept for trace extraction *)
  | Chaining
      (** feed the whole accumulating reached set through the cluster
          fold each iteration instead of the frontier. Produces rings,
          iteration counts and traces identical to {!Bfs} —
          image(R) \ R = image(F) \ R — while exercising a different
          operand shape (no frontier minimization applies). *)
  | Saturation
      (** guard-local fixpoints: the reached set is sliced by the value
          predicates of one small-domain state variable, each slice
          saturated locally before moving on, sweeping until a full
          pass adds nothing. Verdicts and trace lengths match the other
          strategies exactly (traces come from a BFS rerun);
          iteration counts are outer sweeps. *)

type tuning = {
  partitioned : bool;
      (** fold the image over {!Enc.schedule}'s conjunctive clusters
          with early quantification instead of one monolithic relprod *)
  use_restrict : bool;
      (** minimize the frontier against the reached set with
          {!Bdd.restrict} before each image step *)
  gc_watermark : int;
      (** reclaim dead BDD nodes at iteration boundaries once this
          many nodes were allocated since the last sweep; [0] disables *)
  cluster_limit : int;
      (** node cap per conjunctive cluster (see {!Enc.schedule}) *)
  strategy : strategy;  (** fixpoint exploration order *)
  par_domains : int;
      (** image parallelism: [> 1] slices each frontier by the values
          of a few state bits and computes slice images concurrently in
          that many OCaml domains (per-domain managers and encoders,
          results transferred back and OR-ed — exact, deterministic).
          [1] (default) is the sequential fold. Takes effect inside
          {!check}/{!reachable_set}; the standalone {!image} is always
          sequential. *)
  reorder_watermark : int;
      (** arm {!Bdd.set_reorder_watermark} on the managers involved:
          dynamic variable reordering fires at iteration boundaries
          once the live-node count reaches this; [0] disables *)
}

val default_tuning : tuning
(** Partitioned, restrict on, GC at a 250k-allocation watermark,
    {!Bfs}, sequential, no reordering. *)

val monolithic_tuning : tuning
(** The pre-optimization behavior: one relprod against
    {!Enc.trans_bdd}, no frontier minimization, no GC, {!Bfs},
    sequential, no reordering. Kept as the cross-check and benchmark
    baseline. *)

val image : ?tuning:tuning -> Enc.t -> Bdd.t -> Bdd.t
(** One-step successors of a set of states (both over current bits).
    Always sequential regardless of [par_domains]. *)

val preimage : ?tuning:tuning -> Enc.t -> Bdd.t -> Bdd.t
(** One-step predecessors. *)

val reachable_set :
  ?max_iterations:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t ->
  ?tuning:tuning -> Enc.t -> Bdd.t
(** The full reachable-state fixpoint (no property). [cancel] is
    polled once per image step; on cancellation the set computed so
    far (a lower bound of the fixpoint) is returned. [obs] receives
    the [reach.iterations] counter. The returned diagram is not left
    registered as a GC root. *)

val deadlocked : Enc.t -> Bdd.t -> Bdd.t
(** [deadlocked enc reach] is the subset of [reach] with no successor;
    a well-formed relational model makes it empty. *)

val check :
  ?max_iterations:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t ->
  ?tuning:tuning -> Enc.t -> bad:Expr.t -> result
(** [cancel] is polled once per image step (cooperative cancellation,
    used by the portfolio's engine racing); when it returns [true] the
    run stops with {!Depth_exhausted} at the current iteration count.
    [obs] (default {!Obs.disabled}) receives a [reach.image] span per
    fixpoint iteration, the [reach.iterations] counter and the
    [reach.peak_nodes]/[reach.frontier_nodes]/[reach.partitions]/
    [reach.image_domains]/[bdd.live_nodes] gauges. [tuning] (default
    {!default_tuning}) selects the image-computation strategy; every
    setting produces identical verdicts and counterexample lengths. *)
