(** BDD encoding of finite-domain models.

    Every model variable is binary-encoded over a block of boolean
    decision variables; current and next copies of the same bit are
    interleaved (bit [b] of the state maps to BDD variable [2b] for the
    current copy and [2b+1] for the primed copy). What the transition
    relation and the copy renames actually require is a {e level}
    property, not an index property: each current bit must sit
    immediately above its primed twin in the manager's variable order,
    so that relations stay compact and renaming between the copies is
    an order-preserving (level-monotonic) shift. Under the initial
    natural order the interleaved indices give exactly that layout,
    and [create] declares each [(2b, 2b+1)] pair as a sift group
    ({!Bdd.set_var_groups}), so dynamic reordering moves pairs as
    blocks and the level property survives every sift. *)

type var_enc = {
  name : string;
  domain : Model.domain;
  values : Expr.value array;  (** value of each encoding index *)
  nbits : int;
  first_bit : int;  (** global bit index of the least significant bit *)
}

type t = {
  mgr : Bdd.manager;
  model : Model.t;
  var_encs : var_enc array;
  decl_index : int array;
      (** var_encs position -> index in the model's declaration order
          (the order of [Model.state] arrays) *)
  by_name : (string, var_enc) Hashtbl.t;
  nbits : int;  (** total state bits (one copy) *)
  cur_set : Bdd.varset;
  nxt_set : Bdd.varset;
  mutable valid_cur : Bdd.t option;
  mutable valid_nxt : Bdd.t option;
  mutable init_cache : Bdd.t option;
  mutable trans_cache : Bdd.t option;
  mutable sched_cache : (int * schedule) option;
      (** keyed by the cluster limit it was built with *)
}

and schedule = {
  parts : Bdd.t array;  (** ordered conjunctive clusters *)
  img_sched : Bdd.varset array;
      (** current-copy variables whose last occurrence is cluster [i]:
          quantified out by the image fold right as it conjoins
          [parts.(i)] *)
  pre_sched : Bdd.varset array;  (** primed-copy dual, for preimage *)
  img_free : Bdd.varset;
      (** current-copy variables mentioned by no cluster: quantified
          straight out of the frontier before the fold *)
  pre_free : Bdd.varset;
  n_conjuncts : int;  (** raw constraint count before clustering *)
}

let bits_for n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  if n <= 1 then 1 else go 1

let bdd_var_cur bit = 2 * bit
let bdd_var_nxt bit = (2 * bit) + 1

(* [var_order], when given, must be a permutation of the model's
   variable names; it controls which variables get the low (near-root)
   BDD positions. Ordering strongly affects BDD sizes, so the bench
   harness compares strategies on the TTA model. *)
let create ?var_order mgr model =
  let ordered_vars =
    match var_order with
    | None -> model.Model.vars
    | Some names ->
        let declared = List.map fst model.Model.vars in
        if List.sort compare names <> List.sort compare declared then
          invalid_arg "Enc.create: var_order is not a permutation";
        List.map
          (fun name -> (name, List.assoc name model.Model.vars))
          names
  in
  let next_bit = ref 0 in
  let var_encs =
    ordered_vars
    |> List.map (fun (name, domain) ->
           let values = Array.of_list (Model.domain_values domain) in
           let nbits = bits_for (Array.length values) in
           let first_bit = !next_bit in
           next_bit := !next_bit + nbits;
           { name; domain; values; nbits; first_bit })
    |> Array.of_list
  in
  let by_name = Hashtbl.create 32 in
  Array.iter (fun ve -> Hashtbl.add by_name ve.name ve) var_encs;
  let decl_index =
    Array.map (fun ve -> Model.var_index model ve.name) var_encs
  in
  let nbits = !next_bit in
  let cur_set = Bdd.varset mgr (List.init nbits bdd_var_cur) in
  let nxt_set = Bdd.varset mgr (List.init nbits bdd_var_nxt) in
  (* Keep each current/primed twin adjacent across dynamic reorders:
     the copy renames below are only level-monotonic if the pair
     structure survives sifting. *)
  Bdd.set_var_groups mgr
    (List.init nbits (fun b -> [ bdd_var_cur b; bdd_var_nxt b ]));
  {
    mgr;
    model;
    var_encs;
    decl_index;
    by_name;
    nbits;
    cur_set;
    nxt_set;
    valid_cur = None;
    valid_nxt = None;
    init_cache = None;
    trans_cache = None;
    sched_cache = None;
  }

let mgr t = t.mgr
let model t = t.model
let nbits t = t.nbits
let cur_set t = t.cur_set
let nxt_set t = t.nxt_set

let var_enc t name =
  match Hashtbl.find_opt t.by_name name with
  | Some ve -> ve
  | None -> invalid_arg (Printf.sprintf "Enc: unknown variable %s" name)

(* BDD recognizing "variable [ve] (in the given copy) encodes value
   index [i]". *)
let guard_of_index t (ve : var_enc) ~primed i =
  let bit b = if primed then bdd_var_nxt b else bdd_var_cur b in
  let rec go j acc =
    if j = ve.nbits then acc
    else
      let b = ve.first_bit + j in
      let lit =
        if (i lsr j) land 1 = 1 then Bdd.var t.mgr (bit b)
        else Bdd.nvar t.mgr (bit b)
      in
      go (j + 1) (Bdd.dand t.mgr acc lit)
  in
  go 0 Bdd.one

(* Symbolic value of an expression: either a boolean function directly,
   or a finite partition of the state space into cases, one per possible
   value. *)
type sval =
  | S_bool of Bdd.t
  | S_cases of (Expr.value * Bdd.t) list

let cases_of t = function
  | S_cases cs -> cs
  | S_bool b ->
      [ (Expr.Bool true, b); (Expr.Bool false, Bdd.dnot t.mgr b) ]

let bool_of t = function
  | S_bool b -> b
  | S_cases cs ->
      (* A value that happens to be boolean-typed. *)
      List.fold_left
        (fun acc (v, g) ->
          match v with
          | Expr.Bool true -> Bdd.dor t.mgr acc g
          | Expr.Bool false -> acc
          | v ->
              Expr.type_error "expected boolean value, got %s"
                (Expr.value_to_string v))
        Bdd.zero cs

(* Merge duplicate values in a case list (guards of equal values are
   OR-ed). *)
let norm_cases t cs =
  let rec insert acc (v, g) =
    match acc with
    | [] -> [ (v, g) ]
    | (v', g') :: rest ->
        if Expr.value_equal v v' then (v', Bdd.dor t.mgr g g') :: rest
        else (v', g') :: insert rest (v, g)
  in
  List.fold_left insert [] cs
  |> List.filter (fun (_, g) -> not (Bdd.is_zero g))

let var_cases t ~primed name =
  let ve = var_enc t name in
  Array.to_list
    (Array.mapi (fun i v -> (v, guard_of_index t ve ~primed i)) ve.values)

let rec eval_sym t e =
  let m = t.mgr in
  let combine_cases f a b =
    let ca = cases_of t (eval_sym t a) and cb = cases_of t (eval_sym t b) in
    let pairs =
      List.concat_map
        (fun (va, ga) ->
          List.filter_map
            (fun (vb, gb) ->
              let g = Bdd.dand m ga gb in
              if Bdd.is_zero g then None else Some (f va vb g))
            cb)
        ca
    in
    pairs
  in
  match e with
  | Expr.Const (Expr.Bool b) -> S_bool (if b then Bdd.one else Bdd.zero)
  | Expr.Const v -> S_cases [ (v, Bdd.one) ]
  | Expr.Cur v -> S_cases (var_cases t ~primed:false v)
  | Expr.Nxt v -> S_cases (var_cases t ~primed:true v)
  | Expr.Not a -> S_bool (Bdd.dnot m (bool_of t (eval_sym t a)))
  | Expr.And (a, b) ->
      S_bool (Bdd.dand m (bool_of t (eval_sym t a)) (bool_of t (eval_sym t b)))
  | Expr.Or (a, b) ->
      S_bool (Bdd.dor m (bool_of t (eval_sym t a)) (bool_of t (eval_sym t b)))
  | Expr.Imp (a, b) ->
      S_bool (Bdd.imp m (bool_of t (eval_sym t a)) (bool_of t (eval_sym t b)))
  | Expr.Iff (a, b) ->
      S_bool (Bdd.iff m (bool_of t (eval_sym t a)) (bool_of t (eval_sym t b)))
  | Expr.Eq (a, b) ->
      let eqs =
        combine_cases
          (fun va vb g -> if Expr.value_equal va vb then g else Bdd.zero)
          a b
      in
      S_bool (Bdd.disj m eqs)
  | Expr.Lt (a, b) ->
      let lts =
        combine_cases
          (fun va vb g ->
            match (va, vb) with
            | Expr.Int x, Expr.Int y -> if x < y then g else Bdd.zero
            | _ ->
                Expr.type_error "< on non-integers in %s" (Expr.to_string e))
          a b
      in
      S_bool (Bdd.disj m lts)
  | Expr.Add (a, b) | Expr.Sub (a, b) ->
      let op x y =
        match e with Expr.Add _ -> x + y | _ -> x - y
      in
      let sums =
        combine_cases
          (fun va vb g ->
            match (va, vb) with
            | Expr.Int x, Expr.Int y -> (Expr.Int (op x y), g)
            | _ ->
                Expr.type_error "arithmetic on non-integers in %s"
                  (Expr.to_string e))
          a b
      in
      S_cases (norm_cases t sums)
  | Expr.Ite (c, th, el) -> (
      let gc = bool_of t (eval_sym t c) in
      let sth = eval_sym t th and sel = eval_sym t el in
      match (sth, sel) with
      | S_bool bt, S_bool be -> S_bool (Bdd.ite m gc bt be)
      | _ ->
          let ct = cases_of t sth and ce = cases_of t sel in
          let gn = Bdd.dnot m gc in
          let guarded g0 = List.map (fun (v, g) -> (v, Bdd.dand m g0 g)) in
          S_cases (norm_cases t (guarded gc ct @ guarded gn ce)))
  | Expr.Member (a, vs) ->
      let ca = cases_of t (eval_sym t a) in
      let hits =
        List.filter_map
          (fun (v, g) ->
            if List.exists (Expr.value_equal v) vs then Some g else None)
          ca
      in
      S_bool (Bdd.disj m hits)

(* Boolean predicate (over current and possibly primed variables) as a
   BDD. *)
let pred t e = bool_of t (eval_sym t e)

(* "Every variable's bits encode an index inside its domain." Needed
   because binary encodings of non-power-of-two domains have junk
   codes. *)
let valid t ~primed =
  let build () =
    Array.fold_left
      (fun acc ve ->
        let n = Array.length ve.values in
        if n = 1 lsl ve.nbits then acc
        else
          let any =
            Bdd.disj t.mgr
              (List.init n (fun i -> guard_of_index t ve ~primed i))
          in
          Bdd.dand t.mgr acc any)
      Bdd.one t.var_encs
  in
  if primed then (
    match t.valid_nxt with
    | Some d -> d
    | None ->
        let d = build () in
        Bdd.ref t.mgr d;
        t.valid_nxt <- Some d;
        d)
  else
    match t.valid_cur with
    | Some d -> d
    | None ->
        let d = build () in
        Bdd.ref t.mgr d;
        t.valid_cur <- Some d;
        d

let init_bdd t =
  match t.init_cache with
  | Some d -> d
  | None ->
      let d =
        Bdd.dand t.mgr (valid t ~primed:false)
          (Bdd.conj t.mgr (List.map (pred t) t.model.Model.init))
      in
      Bdd.ref t.mgr d;
      t.init_cache <- Some d;
      d

(* Individual transition constraints (kept separate for the bounded
   model checker and for conjunction scheduling). *)
let trans_parts t = List.map (pred t) t.model.Model.trans

let trans_bdd t =
  match t.trans_cache with
  | Some d -> d
  | None ->
      let d =
        Bdd.conj t.mgr
          (valid t ~primed:false :: valid t ~primed:true :: trans_parts t)
      in
      Bdd.ref t.mgr d;
      t.trans_cache <- Some d;
      d

(* ------------------------------------------------------------------ *)
(* Conjunctively partitioned transition relation with an early
   quantification schedule (Burch–Clarke–Long). The monolithic
   [trans_bdd] conjoins every constraint into one relation whose size
   the image computation then pays on every step; instead we keep the
   constraints as an ordered list of clusters and quantify each state
   variable out of the relational product at the last cluster that
   mentions it, so the intermediate products stay narrow. *)

let default_cluster_limit = 1_500

(* Greedy cluster order: repeatedly pick the cluster that releases the
   most current-copy variables (variables appearing in no other
   remaining cluster — they can be quantified out immediately after
   conjoining it), breaking ties toward smaller diagrams so cheap
   constraints are folded in early. *)
let order_clusters clusters =
  let supp = List.map (fun c -> (c, Bdd.support c)) clusters in
  let cur_only s = List.filter (fun v -> v land 1 = 0) s in
  let rec go acc remaining =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let elsewhere c =
          List.concat_map
            (fun (c', s') -> if c' == c then [] else s')
            remaining
        in
        let score (c, s) =
          let other = elsewhere c in
          let released =
            List.length
              (List.filter (fun v -> not (List.mem v other)) (cur_only s))
          in
          (released, -Bdd.size c)
        in
        let best =
          List.fold_left
            (fun (bc, bs) cs -> if score cs > bs then (cs, score cs) else (bc, bs))
            (List.hd remaining, score (List.hd remaining))
            (List.tl remaining)
          |> fst
        in
        go (fst best :: acc)
          (List.filter (fun (c, _) -> not (c == fst best)) remaining)
  in
  go [] supp

let build_schedule t ~cluster_limit =
  let conjuncts =
    (valid t ~primed:false :: valid t ~primed:true :: trans_parts t)
    |> List.filter (fun d -> not (Bdd.is_one d))
  in
  let n_conjuncts = List.length conjuncts in
  (* Cluster in order: conjoin while the cluster diagram stays under
     the node limit, then start a fresh one. *)
  let flush acc cluster =
    match cluster with None -> acc | Some c -> c :: acc
  in
  let clusters =
    let acc, last =
      List.fold_left
        (fun (acc, cluster) d ->
          match cluster with
          | None -> (acc, Some d)
          | Some c ->
              let merged = Bdd.dand t.mgr c d in
              if Bdd.size merged <= cluster_limit then (acc, Some merged)
              else (c :: acc, Some d))
        ([], None) conjuncts
    in
    List.rev (flush acc last)
  in
  let ordered = Array.of_list (order_clusters clusters) in
  let k = Array.length ordered in
  let supports = Array.map Bdd.support ordered in
  (* Last cluster mentioning each BDD variable; -1 = mentioned by
     none (quantified straight out of the operand before the fold). *)
  let last_of v =
    let rec go i best =
      if i >= k then best
      else go (i + 1) (if List.mem v supports.(i) then i else best)
    in
    go 0 (-1)
  in
  let img_slots = Array.make k [] and pre_slots = Array.make k [] in
  let img_free = Stdlib.ref [] and pre_free = Stdlib.ref [] in
  for b = 0 to t.nbits - 1 do
    let cur = bdd_var_cur b and nxt = bdd_var_nxt b in
    (match last_of cur with
    | -1 -> img_free := cur :: !img_free
    | i -> img_slots.(i) <- cur :: img_slots.(i));
    match last_of nxt with
    | -1 -> pre_free := nxt :: !pre_free
    | i -> pre_slots.(i) <- nxt :: pre_slots.(i)
  done;
  let vs l = Bdd.varset t.mgr l in
  Array.iter (Bdd.ref t.mgr) ordered;
  {
    parts = ordered;
    img_sched = Array.map vs img_slots;
    pre_sched = Array.map vs pre_slots;
    img_free = vs !img_free;
    pre_free = vs !pre_free;
    n_conjuncts;
  }

let schedule ?(cluster_limit = default_cluster_limit) t =
  match t.sched_cache with
  | Some (limit, s) when limit = cluster_limit -> s
  | _ ->
      let s = build_schedule t ~cluster_limit in
      (match t.sched_cache with
      | Some (_, old) -> Array.iter (Bdd.deref t.mgr) old.parts
      | None -> ());
      t.sched_cache <- Some (cluster_limit, s);
      s

let n_partitions t = match t.sched_cache with
  | Some (_, s) -> Array.length s.parts
  | None -> 0

(* The ±1 shifts between the copies are level-monotonic because each
   (cur, nxt) twin occupies two consecutive levels (grouped above), in
   any order the sifter settles on. *)
let rename_nxt_to_cur t d = Bdd.rename t.mgr (fun v -> v - 1) d
let rename_cur_to_nxt t d = Bdd.rename t.mgr (fun v -> v + 1) d

(* Encoding of one concrete state as a cube over the current bits. *)
let state_cube t (s : Model.state) =
  let cube = ref Bdd.one in
  Array.iteri
    (fun vi ve ->
      let v = s.(t.decl_index.(vi)) in
      let idx =
        let rec find i =
          if i >= Array.length ve.values then
            invalid_arg
              (Printf.sprintf "Enc.state_cube: %s out of domain of %s"
                 (Expr.value_to_string v) ve.name)
          else if Expr.value_equal ve.values.(i) v then i
          else find (i + 1)
        in
        find 0
      in
      cube := Bdd.dand t.mgr !cube (guard_of_index t ve ~primed:false idx))
    t.var_encs;
  !cube

(* Pick one concrete state from a non-empty set of states (over current
   bits). Deterministic: lowest value index first. *)
let decode_state t set =
  if Bdd.is_zero set then invalid_arg "Enc.decode_state: empty set";
  let s = Array.make (Array.length t.var_encs) (Expr.Bool false) in
  let rest = ref set in
  Array.iteri
    (fun vi ve ->
      let rec pick i =
        if i >= Array.length ve.values then
          invalid_arg "Enc.decode_state: no valid encoding (junk code?)"
        else
          let g = guard_of_index t ve ~primed:false i in
          let inter = Bdd.dand t.mgr !rest g in
          if Bdd.is_zero inter then pick (i + 1)
          else begin
            s.(t.decl_index.(vi)) <- ve.values.(i);
            rest := inter
          end
      in
      pick 0)
    t.var_encs;
  s

(* For the bounded model checker: map a BDD variable index back to
   (state bit, primed?). *)
let bit_of_bddvar idx = (idx / 2, idx land 1 = 1)
