(** Finite-domain symbolic models.

    A model declares its state variables with finite domains and gives
    two lists of boolean constraints: [init] (over current variables
    only) restricting the initial states, and [trans] (over current and
    primed variables) defining the transition relation as a conjunction —
    exactly the shape of the SMV model in Section 4.2 of the paper. *)

type domain =
  | Bool
  | Range of int * int  (** inclusive bounds *)
  | Enum of string list

let domain_values = function
  | Bool -> [ Expr.Bool false; Expr.Bool true ]
  | Range (lo, hi) ->
      if lo > hi then invalid_arg "Model.domain_values: empty range";
      List.init (hi - lo + 1) (fun i -> Expr.Int (lo + i))
  | Enum syms ->
      if syms = [] then invalid_arg "Model.domain_values: empty enum";
      List.map (fun s -> Expr.Sym s) syms

let domain_size d = List.length (domain_values d)

let pp_domain ppf = function
  | Bool -> Format.pp_print_string ppf "boolean"
  | Range (lo, hi) -> Format.fprintf ppf "%d..%d" lo hi
  | Enum syms ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        syms

type t = {
  name : string;
  vars : (string * domain) list;  (** declaration order fixes bit order *)
  init : Expr.t list;
  trans : Expr.t list;
}

let validate m =
  (* Duplicate declarations are almost certainly a bug in the model. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (v, _) ->
      if Hashtbl.mem seen v then
        invalid_arg (Printf.sprintf "Model %s: duplicate variable %s" m.name v);
      Hashtbl.add seen v ())
    m.vars;
  let check_known e =
    let cur, nxt = Expr.vars e in
    List.iter
      (fun v ->
        if not (Hashtbl.mem seen v) then
          invalid_arg
            (Printf.sprintf "Model %s: undeclared variable %s in %s" m.name v
               (Expr.to_string e)))
      (cur @ nxt)
  in
  List.iter
    (fun e ->
      check_known e;
      let _, nxt = Expr.vars e in
      if nxt <> [] then
        invalid_arg
          (Printf.sprintf "Model %s: primed variable in init constraint %s"
             m.name (Expr.to_string e)))
    m.init;
  List.iter check_known m.trans;
  m

let make ~name ~vars ~init ~trans =
  validate { name; vars; init; trans }

(* A concrete state: one value per declared variable, in declaration
   order. *)
type state = Expr.value array

let var_index m v =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Model: unknown variable %s" v)
    | (u, _) :: rest -> if String.equal u v then i else go (i + 1) rest
  in
  go 0 m.vars

let state_get m (s : state) v = s.(var_index m v)

let lookup_of m (s : state) v = state_get m s v

let pp_state m ppf (s : state) =
  Format.fprintf ppf "@[<hv 2>{";
  List.iteri
    (fun i (v, _) ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%s = %a" v Expr.pp_value s.(i))
    m.vars;
  Format.fprintf ppf "}@]"

(* Check a concrete state against the declared domains. *)
let state_in_domains m (s : state) =
  List.for_all2
    (fun (_, d) v -> List.exists (Expr.value_equal v) (domain_values d))
    m.vars (Array.to_list s)

(* Evaluate a current-state-only predicate on a concrete state. *)
let eval_pred m e (s : state) =
  match
    Expr.eval ~lookup_cur:(lookup_of m s)
      ~lookup_nxt:(fun v ->
        Expr.type_error "primed variable %s in state predicate" v)
      e
  with
  | Expr.Bool b -> b
  | v ->
      Expr.type_error "state predicate evaluated to %s"
        (Expr.value_to_string v)

(* Evaluate a transition constraint on a concrete state pair. *)
let eval_trans m e (s : state) (s' : state) =
  match
    Expr.eval ~lookup_cur:(lookup_of m s) ~lookup_nxt:(lookup_of m s') e
  with
  | Expr.Bool b -> b
  | v ->
      Expr.type_error "transition constraint evaluated to %s"
        (Expr.value_to_string v)

(* Does the concrete pair (s, s') satisfy the whole transition
   relation? *)
let step_ok m s s' = List.for_all (fun e -> eval_trans m e s s') m.trans

let initial_ok m s = List.for_all (fun e -> eval_pred m e s) m.init

(* A content hash of the model: name, variable declarations (order
   matters — it fixes the bit encoding) and every constraint, rendered
   canonically and digested. Two models with the same fingerprint
   denote the same transition system under the same encoding, which is
   what the portfolio result cache keys on. *)
let fingerprint m =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf m.name;
  Buffer.add_char buf '\n';
  List.iter
    (fun (v, d) ->
      Buffer.add_string buf v;
      Buffer.add_char buf ':';
      Buffer.add_string buf (Format.asprintf "%a" pp_domain d);
      Buffer.add_char buf '\n')
    m.vars;
  Buffer.add_string buf "init\n";
  List.iter
    (fun e ->
      Buffer.add_string buf (Expr.to_string e);
      Buffer.add_char buf '\n')
    m.init;
  Buffer.add_string buf "trans\n";
  List.iter
    (fun e ->
      Buffer.add_string buf (Expr.to_string e);
      Buffer.add_char buf '\n')
    m.trans;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Total number of states in the declared state space (not necessarily
   reachable). *)
let space_size m =
  List.fold_left (fun acc (_, d) -> acc *. float_of_int (domain_size d)) 1.0
    m.vars

(* Brute-force enumeration of the full state space. Only sensible for
   tiny models; the test suite uses it as ground truth against the
   symbolic engines. *)
let enumerate_states m =
  let doms =
    List.map (fun (_, d) -> Array.of_list (domain_values d)) m.vars
  in
  let rec go = function
    | [] -> [ [] ]
    | dom :: rest ->
        let tails = go rest in
        List.concat_map
          (fun v -> List.map (fun tl -> v :: tl) tails)
          (Array.to_list dom)
  in
  List.map Array.of_list (go doms)

let initial_states_brute m =
  List.filter (initial_ok m) (enumerate_states m)

let successors_brute m all s =
  List.filter (step_ok m s) all
