(* K-induction: unbounded SAT-based safety proofs.

   Two incremental unrolling sessions run in lockstep. The BASE session
   (with initial-state constraints) refutes the property if a bad state
   is reachable within k steps. The STEP session (without initial
   constraints) asks whether a run of k+1 good states can be extended
   to a bad one; if that is unsatisfiable, the property is k-inductive
   and holds at every depth. Simple-path constraints (all states of the
   step run pairwise distinct) make the method complete for finite
   systems: k eventually exceeds the longest simple path of good
   states. *)

type result =
  | Proved of int  (** the property is k-inductive at this k *)
  | Refuted of Model.state array
  | Unknown of int  (** neither verdict up to this k *)

type session = {
  enc : Enc.t;
  base : Bmc.t;
  step : Bmc.t;
  bad_bdd : Bdd.t;
  good_bdd : Bdd.t;
}

let create enc ~bad =
  let bad_bdd = Enc.pred enc bad in
  let good_bdd = Bdd.dnot (Enc.mgr enc) bad_bdd in
  let base = Bmc.create enc in
  let step = Bmc.create ~with_init:false enc in
  (* Goodness of the run's prefix is asserted as the sessions grow (see
     [extend]); at k = 0 the step query correctly asks whether the
     property is a tautology over valid states. *)
  { enc; base; step; bad_bdd; good_bdd }

(* Pairwise distinctness of step states [i] and [j]: at least one state
   bit differs. One fresh variable per bit encodes the difference. *)
let assert_distinct s i j =
  let solver = Bmc.solver s.step in
  let bi = Bmc.step_vars s.step ~step:i in
  let bj = Bmc.step_vars s.step ~step:j in
  let diff_lits =
    Array.to_list
      (Array.mapi
         (fun b vi ->
           let vj = bj.(b) in
           let d = Sat.pos (Sat.new_var solver) in
           (* d -> (vi <> vj); the reverse implication is not needed
              for "at least one differs". *)
           Sat.add_clause solver
             [ Sat.negate d; Sat.pos vi; Sat.pos vj ];
           Sat.add_clause solver
             [ Sat.negate d; Sat.neg vi; Sat.neg vj ];
           d)
         bi)
  in
  Sat.add_clause solver diff_lits

(* Grow both sessions from depth k to k+1 and maintain the step
   session's invariants: state k is good, and the new state differs
   from every earlier one. *)
let extend s =
  Bmc.extend s.base;
  Bmc.extend s.step;
  let k = Bmc.depth s.step in
  Bmc.assert_pred s.step ~step:(k - 1) s.good_bdd;
  for i = 0 to k - 1 do
    assert_distinct s i k
  done

let check ?(max_k = 20) ?(cancel = fun () -> false) ?(obs = Obs.disabled) enc
    ~bad =
  let s = create enc ~bad in
  let k_g = Obs.gauge obs "induction.k" in
  let rec go () =
    let k = Bmc.depth s.base in
    if cancel () then begin
      Obs.instant obs "induction.cancelled";
      Unknown (k - 1)
    end
    else begin
      Obs.record k_g k;
      (* Base: bad reachable in exactly k steps from an initial state? *)
      let base_r =
        Obs.with_span obs "induction.base_case" (fun () ->
            Bmc.check_at_current_depth s.base ~bad_bdd:s.bad_bdd)
      in
      match base_r with
      | Some trace -> Refuted trace
      | None -> (
          (* Step: can k good states (pairwise distinct) be followed by
             a bad one? *)
          let step_r =
            Obs.with_span obs "induction.step_case" (fun () ->
                let frontier_bad = Bmc.pred_lit s.step ~step:k s.bad_bdd in
                Sat.solve ~assumptions:[ frontier_bad ] (Bmc.solver s.step))
          in
          match step_r with
          | Sat.Unsat -> Proved k
          | Sat.Sat ->
              if k >= max_k then Unknown k
              else begin
                Obs.with_span obs "induction.unroll" (fun () -> extend s);
                go ()
              end)
    end
  in
  let result = go () in
  (* Both sessions' effort, accumulated into the same sat.* names. *)
  Bmc.flush_counters s.base obs;
  Bmc.flush_counters s.step obs;
  result
