(* K-induction: unbounded SAT-based safety proofs.

   Two incremental unrolling sessions cooperate. The BASE session (with
   initial-state constraints) refutes the property if a bad state is
   reachable within k steps — it is queried through {!Bmc.check_session},
   so it can be a *shared warm session* from the service tier's pool:
   depths it already verified clean for this property are answered from
   the memo and k-induction warm-starts instead of re-encoding. The STEP
   session (without initial constraints, always owned by this session)
   asks whether a run of k+1 good states can be extended to a bad one;
   if that is unsatisfiable, the property is k-inductive and holds at
   every depth. Simple-path constraints (all states of the step run
   pairwise distinct) make the method complete for finite systems: k
   eventually exceeds the longest simple path of good states. *)

type result =
  | Proved of int  (** the property is k-inductive at this k *)
  | Refuted of Model.state array
  | Unknown of int  (** neither verdict up to this k *)

type session = {
  enc : Enc.t;
  base : Bmc.t;
  step : Bmc.t;
  bad : Expr.t;
  bad_bdd : Bdd.t;
  good_bdd : Bdd.t;
}

let create ?base enc ~bad =
  let bad_bdd = Enc.pred enc bad in
  let good_bdd = Bdd.dnot (Enc.mgr enc) bad_bdd in
  let base = match base with Some b -> b | None -> Bmc.create enc in
  let step = Bmc.create ~with_init:false enc in
  (* Goodness of the run's prefix is asserted as the step session grows
     (see [extend]); at k = 0 the step query correctly asks whether the
     property is a tautology over valid states. *)
  { enc; base; step; bad; bad_bdd; good_bdd }

(* Pairwise distinctness of step states [i] and [j]: at least one state
   bit differs. One fresh variable per bit encodes the difference. *)
let assert_distinct s i j =
  let bi = Bmc.step_vars s.step ~step:i in
  let bj = Bmc.step_vars s.step ~step:j in
  let diff_lits =
    Array.to_list
      (Array.mapi
         (fun b vi ->
           let vj = bj.(b) in
           let d = Bmc.fresh_lit s.step in
           (* d -> (vi <> vj); the reverse implication is not needed
              for "at least one differs". *)
           Bmc.add_clause s.step
             [ Sat.negate d; Sat.pos vi; Sat.pos vj ];
           Bmc.add_clause s.step
             [ Sat.negate d; Sat.neg vi; Sat.neg vj ];
           d)
         bi)
  in
  Bmc.add_clause s.step diff_lits

(* Grow the step session from depth k to k+1 and maintain its
   invariants: state k is good, and the new state differs from every
   earlier one. The base session grows lazily inside
   [Bmc.check_session] instead of in lockstep, so a warm (deeper) base
   is never forced to match k. *)
let extend s =
  Bmc.extend s.step;
  let k = Bmc.depth s.step in
  Bmc.assert_pred s.step ~step:(k - 1) s.good_bdd;
  for i = 0 to k - 1 do
    assert_distinct s i k
  done

let check_session ?(max_k = 20) ?(cancel = fun () -> false)
    ?(obs = Obs.disabled) s =
  let k_g = Obs.gauge obs "induction.k" in
  let rec go () =
    let k = Bmc.depth s.step in
    if cancel () then begin
      Obs.instant obs "induction.cancelled";
      Unknown (k - 1)
    end
    else begin
      Obs.record k_g k;
      (* Base: bad reachable within k steps from an initial state? A
         warm base answers memoized depths for free and only solves the
         frontier. *)
      let base_r =
        Obs.with_span obs "induction.base_case" (fun () ->
            Bmc.check_session ~max_depth:k ~cancel s.base ~bad:s.bad)
      in
      match base_r with
      | Bmc.Counterexample trace -> Refuted trace
      | Bmc.No_counterexample completed ->
          if completed <> Some k then begin
            (* Cancelled mid-scan: the base claim stops short of k, so
               no inductive conclusion at k is justified. *)
            Obs.instant obs "induction.cancelled";
            Unknown (k - 1)
          end
          else begin
            (* Step: can k good states (pairwise distinct) be followed
               by a bad one? *)
            let step_r =
              Obs.with_span obs "induction.step_case" (fun () ->
                  let frontier_bad =
                    Bmc.pred_lit s.step ~step:k s.bad_bdd
                  in
                  Bmc.solve_assuming s.step [ frontier_bad ])
            in
            match step_r with
            | Sat.Unsat -> Proved k
            | Sat.Sat ->
                if k >= max_k then Unknown k
                else begin
                  Obs.with_span obs "induction.unroll" (fun () -> extend s);
                  go ()
                end
          end
    end
  in
  go ()

let step_counters s = Bmc.counters s.step

let flush_counters s obs =
  (* Both sessions' effort, accumulated into the same sat.* names. *)
  Bmc.flush_counters s.base obs;
  Bmc.flush_counters s.step obs

let check ?max_k ?cancel ?(obs = Obs.disabled) enc ~bad =
  let s = create enc ~bad in
  let result = check_session ?max_k ?cancel ~obs s in
  flush_counters s obs;
  result
