(** K-induction: unbounded SAT-based safety proofs.

    Complements {!Bmc} (which only refutes) and {!Reach} (whose proofs
    need the reachable set to have a small BDD): if no bad state is
    reachable within [k] steps {e and} every run of [k] pairwise
    distinct good states can only continue into a good state, the
    property holds at every depth. The simple-path (distinctness)
    constraints make the method complete for finite systems, though the
    required [k] may be impractically large — {!result} is honest about
    that. *)

type result =
  | Proved of int  (** the property is k-inductive at this k *)
  | Refuted of Model.state array
      (** counterexample from the base case (same quality as {!Bmc}) *)
  | Unknown of int  (** neither verdict up to this k *)

val check :
  ?max_k:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> Enc.t -> bad:Expr.t ->
  result
(** [cancel] is polled once per k (cooperative cancellation, used by
    the portfolio's engine racing); when it fires the result is
    {!Unknown} at the last completed k. [obs] (default {!Obs.disabled})
    receives an [induction.base_case]/[induction.step_case] span pair
    per induction step, the [induction.k] gauge and both sessions'
    [sat.*] counters. *)
