(** K-induction: unbounded SAT-based safety proofs.

    Complements {!Bmc} (which only refutes) and {!Reach} (whose proofs
    need the reachable set to have a small BDD): if no bad state is
    reachable within [k] steps {e and} every run of [k] pairwise
    distinct good states can only continue into a good state, the
    property holds at every depth. The simple-path (distinctness)
    constraints make the method complete for finite systems, though the
    required [k] may be impractically large — {!result} is honest about
    that. *)

type result =
  | Proved of int  (** the property is k-inductive at this k *)
  | Refuted of Model.state array
      (** counterexample from the base case (same quality as {!Bmc}) *)
  | Unknown of int  (** neither verdict up to this k *)

type session
(** A resumable k-induction session: a base {!Bmc} session (which may
    be shared and warm) plus an owned step session carrying the
    simple-path constraints. *)

val create : ?base:Bmc.t -> Enc.t -> bad:Expr.t -> session
(** Build a session. [base] (default a fresh one) is a BMC session
    {e with} initial-state constraints over the same encoder; passing a
    pooled warm session makes the base case reuse its unrolling,
    learned clauses and per-property memo — k-induction warm-starts
    from BMC instead of re-encoding. *)

val check_session :
  ?max_k:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> session -> result
(** Run the induction loop on the session. [cancel] is polled once per
    k (cooperative cancellation, used by the portfolio's engine
    racing); when it fires the result is {!Unknown} at the last
    completed k. [obs] (default {!Obs.disabled}) receives an
    [induction.base_case]/[induction.step_case] span pair per induction
    step and the [induction.k] gauge. *)

val step_counters : session -> (string * int) list
(** The owned step session's [sat.*] counters (the base session's are
    read by the caller, who may share it). *)

val flush_counters : session -> Obs.t -> unit
(** Add both sessions' [sat.*] counters to an observability track
    (cumulative; diff snapshots for per-query effort). *)

val check :
  ?max_k:int -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> Enc.t -> bad:Expr.t ->
  result
(** Cold-start convenience: {!create} a fresh session, run
    {!check_session} once and flush both sessions' [sat.*] counters
    into [obs]. *)
