(** Finite-domain symbolic models.

    A model declares its state variables with finite domains and gives
    two lists of boolean constraints: [init] (over current variables
    only) restricting the initial states, and [trans] (over current and
    primed variables) defining the transition relation as their
    conjunction — exactly the shape of the SMV model in Section 4.2 of
    the paper. *)

type domain =
  | Bool
  | Range of int * int  (** inclusive bounds *)
  | Enum of string list

val domain_values : domain -> Expr.value list
(** The values of a domain, in encoding order.
    @raise Invalid_argument on empty domains. *)

val domain_size : domain -> int
val pp_domain : Format.formatter -> domain -> unit

type t = private {
  name : string;
  vars : (string * domain) list;  (** declaration order fixes bit order *)
  init : Expr.t list;
  trans : Expr.t list;
}

val make :
  name:string ->
  vars:(string * domain) list ->
  init:Expr.t list ->
  trans:Expr.t list ->
  t
(** Build and validate a model: variable names must be unique, every
    constraint may only mention declared variables, and init
    constraints may not mention primed variables.
    @raise Invalid_argument on violations. *)

(** {1 Concrete states} *)

type state = Expr.value array
(** One value per declared variable, in declaration order. *)

val var_index : t -> string -> int
val state_get : t -> state -> string -> Expr.value
val pp_state : t -> Format.formatter -> state -> unit

val state_in_domains : t -> state -> bool
(** Is every component inside its declared domain? *)

val eval_pred : t -> Expr.t -> state -> bool
(** Evaluate a current-state predicate.
    @raise Expr.Type_error if the expression is not boolean or mentions
    primed variables. *)

val eval_trans : t -> Expr.t -> state -> state -> bool
(** Evaluate a transition constraint on a concrete state pair. *)

val step_ok : t -> state -> state -> bool
(** Does the pair satisfy {e all} transition constraints? *)

val initial_ok : t -> state -> bool

val space_size : t -> float
(** Size of the declared (not necessarily reachable) state space. *)

val fingerprint : t -> string
(** A content hash (hex digest) of the model: name, variable
    declarations in order, and every init/transition constraint. Equal
    fingerprints mean the same transition system under the same bit
    encoding; the portfolio's persistent result cache keys on this. *)

(** {1 Brute-force enumeration}

    Ground truth for the test suite; only usable on tiny models. *)

val enumerate_states : t -> state list
val initial_states_brute : t -> state list
val successors_brute : t -> state list -> state -> state list
(** [successors_brute m all s] filters the precomputed full space
    [all]. *)
