(** SAT-based bounded model checking.

    The transition constraints are first compiled to BDDs over the
    encoder's bit space (reusing the verified symbolic compiler), then
    each BDD is translated to CNF with one Tseitin variable per BDD node,
    instantiated per unrolling step. The bad-state predicate at depth [k]
    is asserted as an assumption, so a single incremental solver instance
    serves every depth. *)

type result =
  | Counterexample of Model.state array
  | No_counterexample of int option
      (** no violation up to (and at) this depth; [None] when cancelled
          before depth 0 completed (a vacuous claim) *)

(* Per-property session memo: the compiled predicate, the highest depth
   verified clean, and the shortest counterexample found (if any). A
   warm session answers repeat queries against this memo and resumes
   solving only past [clean]. *)
type prop = {
  prop_bdd : Bdd.t;
  mutable clean : int;  (** depths [0..clean] hold; -1 initially *)
  mutable cex : (int * Model.state array) option;
      (** shortest violating depth + trace *)
}

type t = {
  enc : Enc.t;
  solver : Sat.t;
  true_lit : Sat.lit;
  (* step -> state bit -> SAT variable *)
  mutable step_bits : int array list;  (** reversed: step k at head *)
  mutable depth : int;
  (* Tseitin memo: (bdd id, base step) -> lit *)
  node_lit : (int * int, Sat.lit) Hashtbl.t;
  init_parts : Bdd.t list;
  trans_parts : Bdd.t list;
  valid_cur : Bdd.t;
  (* Property memo, keyed by the printed expression. *)
  props : (string, prop) Hashtbl.t;
}

let bits_at t step =
  List.nth t.step_bits (t.depth - step)

let new_step_bits t =
  let n = Enc.nbits t.enc in
  Array.init n (fun _ -> Sat.new_var t.solver)

(* Translate a BDD over encoder bit space into CNF, where current bits
   refer to step [step] and primed bits to step [step + 1]. Returns a
   literal equivalent to the BDD's function. *)
let rec lit_of_bdd t ~step d =
  if Bdd.is_one d then t.true_lit
  else if Bdd.is_zero d then Sat.negate t.true_lit
  else
    let key = (Bdd.id d, step) in
    match Hashtbl.find_opt t.node_lit key with
    | Some l -> l
    | None ->
        let bit, primed = Enc.bit_of_bddvar (Bdd.top_var d) in
        let bit_var =
          (bits_at t (if primed then step + 1 else step)).(bit)
        in
        let v = Sat.pos bit_var in
        let lo = lit_of_bdd t ~step (Bdd.low d) in
        let hi = lit_of_bdd t ~step (Bdd.high d) in
        let n = Sat.pos (Sat.new_var t.solver) in
        (* n <-> (v ? hi : lo) *)
        Sat.add_clause t.solver [ Sat.negate n; Sat.negate v; hi ];
        Sat.add_clause t.solver [ Sat.negate n; v; lo ];
        Sat.add_clause t.solver [ n; Sat.negate v; Sat.negate hi ];
        Sat.add_clause t.solver [ n; v; Sat.negate lo ];
        Hashtbl.add t.node_lit key n;
        n

let assert_bdd t ~step d = Sat.add_clause t.solver [ lit_of_bdd t ~step d ]

(* [with_init:false] omits the initial-state constraints at step 0,
   which is what the inductive step of k-induction needs: a run
   starting anywhere. *)
let create ?(with_init = true) enc =
  let solver = Sat.create () in
  let tv = Sat.new_var solver in
  Sat.add_clause solver [ Sat.pos tv ];
  let t =
    {
      enc;
      solver;
      true_lit = Sat.pos tv;
      step_bits = [];
      depth = 0;
      node_lit = Hashtbl.create 4096;
      init_parts =
        List.map (Enc.pred enc) (Enc.model enc).Model.init;
      trans_parts = Enc.trans_parts enc;
      valid_cur = Enc.valid enc ~primed:false;
      props = Hashtbl.create 8;
    }
  in
  t.step_bits <- [ new_step_bits t ];
  assert_bdd t ~step:0 t.valid_cur;
  if with_init then List.iter (assert_bdd t ~step:0) t.init_parts;
  t

(* Extend the unrolling by one step: fresh bits for step [depth+1], the
   transition constraints between [depth] and [depth+1], and the domain
   validity of the new step. *)
let extend t =
  let new_bits = new_step_bits t in
  let from_step = t.depth in
  t.step_bits <- new_bits :: t.step_bits;
  t.depth <- t.depth + 1;
  List.iter (assert_bdd t ~step:from_step) t.trans_parts;
  assert_bdd t ~step:t.depth t.valid_cur

let decode_model ?upto t =
  let upto = match upto with Some u -> u | None -> t.depth in
  let n = Enc.nbits t.enc in
  let model_enc = t.enc in
  (* One explicit model snapshot for the whole trace — no silently
     defaulting reads of unfixed variables. *)
  let m = Sat.model t.solver in
  let states =
    Array.init (upto + 1) (fun step ->
        let bits = bits_at t step in
        let raw = Array.init n (fun b -> m.(bits.(b))) in
        (* Rebuild each variable's value from its bits. *)
        let mdl = Enc.model model_enc in
        let s = Array.make (List.length mdl.Model.vars) (Expr.Bool false) in
        List.iteri
          (fun vi (name, _) ->
            let ve = Enc.var_enc model_enc name in
            let idx = ref 0 in
            for j = ve.Enc.nbits - 1 downto 0 do
              idx := (!idx * 2) + if raw.(ve.Enc.first_bit + j) then 1 else 0
            done;
            s.(vi) <- ve.Enc.values.(!idx))
          mdl.Model.vars;
        s)
  in
  states

(* Check whether a bad state is reachable in exactly [step] steps
   ([step] <= current depth; the unrolling constrains every transition,
   so the decoded prefix 0..step is a valid run ending in a bad
   state). *)
let check_at_depth t ~step ~bad_bdd =
  let bad_lit = lit_of_bdd t ~step bad_bdd in
  match Sat.solve ~assumptions:[ bad_lit ] t.solver with
  | Sat.Sat -> Some (decode_model ~upto:step t)
  | Sat.Unsat -> None

let check_at_current_depth t ~bad_bdd = check_at_depth t ~step:t.depth ~bad_bdd

let ensure_depth t d =
  while t.depth < d do
    extend t
  done

(* Flush the solver's effort counters into an observability track at
   the end of a run (counter cells add, so base+step sessions of
   k-induction accumulate into the same names). *)
let flush_counters ?(prefix = "") t obs =
  if Obs.enabled obs then
    List.iter
      (fun (name, v) -> Obs.incr_by obs (prefix ^ name) v)
      (Sat.counters t.solver)

let prop_of t ~bad =
  let key = Expr.to_string bad in
  match Hashtbl.find_opt t.props key with
  | Some p -> p
  | None ->
      let p = { prop_bdd = Enc.pred t.enc bad; clean = -1; cex = None } in
      Hashtbl.add t.props key p;
      p

(* Pure memo lookup — never creates the property entry, so peeking at
   a session's progress costs nothing. *)
let clean_depth t ~bad =
  match Hashtbl.find_opt t.props (Expr.to_string bad) with
  | Some p -> p.clean
  | None -> -1

(* Run a (possibly warm) session against a property up to [max_depth].
   Depths already verified clean in earlier queries are answered from
   the memo; only the frontier past [clean] is actually solved, with
   every learned clause of the previous queries still in the solver. *)
let check_session ?(max_depth = 30) ?(cancel = fun () -> false)
    ?(obs = Obs.disabled) t ~bad =
  let p = prop_of t ~bad in
  match p.cex with
  | Some (d, trace) when d <= max_depth -> Counterexample trace
  | _ ->
      if p.clean >= max_depth then No_counterexample (Some max_depth)
      else begin
        let depth_g = Obs.gauge obs "bmc.depth" in
        let rec go step =
          if step > max_depth then No_counterexample (Some max_depth)
          else if cancel () then begin
            (* Polled once per depth: when cancelled, every depth up to
               [clean] has been checked, so the bounded claim is honest
               (and vacuous — [None] — when depth 0 never finished). *)
            Obs.instant obs "bmc.cancelled";
            No_counterexample (if p.clean < 0 then None else Some p.clean)
          end
          else begin
            Obs.record depth_g step;
            if t.depth < step then
              Obs.with_span obs "bmc.unroll" (fun () -> ensure_depth t step);
            let sp = Obs.start obs "bmc.solve_depth" in
            let r = check_at_depth t ~step ~bad_bdd:p.prop_bdd in
            Obs.stop sp;
            match r with
            | Some trace ->
                p.cex <- Some (step, trace);
                Counterexample trace
            | None ->
                p.clean <- step;
                go (step + 1)
          end
        in
        go (p.clean + 1)
      end

let check ?max_depth ?cancel ?obs enc ~bad =
  let t = create enc in
  let result = check_session ?max_depth ?cancel ?obs t ~bad in
  (match obs with Some obs -> flush_counters t obs | None -> ());
  result

(* Block one whole trace: at least one state bit of one step must
   differ. *)
let block_trace t trace =
  let clause = ref [] in
  Array.iteri
    (fun step state ->
      let bits = bits_at t step in
      let mdl = Enc.model t.enc in
      List.iteri
        (fun vi (name, _) ->
          let ve = Enc.var_enc t.enc name in
          let idx =
            let rec find i =
              if Expr.value_equal ve.Enc.values.(i) state.(vi) then i
              else find (i + 1)
            in
            find 0
          in
          for j = 0 to ve.Enc.nbits - 1 do
            let v = bits.(ve.Enc.first_bit + j) in
            let lit =
              if (idx lsr j) land 1 = 1 then Sat.neg v else Sat.pos v
            in
            clause := lit :: !clause
          done)
        mdl.Model.vars)
    trace;
  Sat.add_clause t.solver !clause

(* Enumerate distinct counterexamples at the shortest violating depth:
   find the minimal depth as {!check} does, then repeatedly block the
   trace just found and re-solve until the depth is exhausted or
   [limit] traces have been produced. *)
let enumerate ?(max_depth = 30) ?(limit = 16) enc ~bad =
  let t = create enc in
  let bad_bdd = Enc.pred enc bad in
  let rec find_depth () =
    match check_at_current_depth t ~bad_bdd with
    | Some trace -> Some trace
    | None ->
        if t.depth >= max_depth then None
        else begin
          extend t;
          find_depth ()
        end
  in
  match find_depth () with
  | None -> []
  | Some first ->
      let rec collect acc n =
        if n >= limit then List.rev acc
        else begin
          block_trace t (List.hd acc);
          match check_at_current_depth t ~bad_bdd with
          | Some trace -> collect (trace :: acc) (n + 1)
          | None -> List.rev acc
        end
      in
      collect [ first ] 1

let solver_stats t = Sat.stats t.solver
let counters t = Sat.counters t.solver
let conflicts t = Sat.conflicts t.solver

(* Typed lower-level access for the k-induction engine: enough surface
   to allocate fresh literals, add clauses and solve under assumptions
   in the session's solver, without handing out the solver itself. *)
let depth t = t.depth
let step_vars t ~step = bits_at t step
let assert_pred t ~step d = assert_bdd t ~step d
let pred_lit t ~step d = lit_of_bdd t ~step d
let fresh_lit t = Sat.pos (Sat.new_var t.solver)
let add_clause t lits = Sat.add_clause t.solver lits
let solve_assuming t assumptions = Sat.solve ~assumptions t.solver
let decode ?upto t = decode_model ?upto t
