(** SAT-based bounded model checking.

    The transition constraints are first compiled to BDDs over the
    encoder's bit space (reusing the verified symbolic compiler), then
    each BDD is translated to CNF with one Tseitin variable per BDD node,
    instantiated per unrolling step. The bad-state predicate at depth [k]
    is asserted as an assumption, so a single incremental solver instance
    serves every depth. *)

type result =
  | Counterexample of Model.state array
  | No_counterexample of int  (** no violation up to (and at) this depth *)

type t = {
  enc : Enc.t;
  solver : Sat.t;
  true_lit : Sat.lit;
  (* step -> state bit -> SAT variable *)
  mutable step_bits : int array list;  (** reversed: step k at head *)
  mutable depth : int;
  (* Tseitin memo: (bdd id, base step) -> lit *)
  node_lit : (int * int, Sat.lit) Hashtbl.t;
  init_parts : Bdd.t list;
  trans_parts : Bdd.t list;
  valid_cur : Bdd.t;
}

let bits_at t step =
  List.nth t.step_bits (t.depth - step)

let new_step_bits t =
  let n = Enc.nbits t.enc in
  Array.init n (fun _ -> Sat.new_var t.solver)

(* Translate a BDD over encoder bit space into CNF, where current bits
   refer to step [step] and primed bits to step [step + 1]. Returns a
   literal equivalent to the BDD's function. *)
let rec lit_of_bdd t ~step d =
  if Bdd.is_one d then t.true_lit
  else if Bdd.is_zero d then Sat.negate t.true_lit
  else
    let key = (Bdd.id d, step) in
    match Hashtbl.find_opt t.node_lit key with
    | Some l -> l
    | None ->
        let bit, primed = Enc.bit_of_bddvar (Bdd.top_var d) in
        let bit_var =
          (bits_at t (if primed then step + 1 else step)).(bit)
        in
        let v = Sat.pos bit_var in
        let lo = lit_of_bdd t ~step (Bdd.low d) in
        let hi = lit_of_bdd t ~step (Bdd.high d) in
        let n = Sat.pos (Sat.new_var t.solver) in
        (* n <-> (v ? hi : lo) *)
        Sat.add_clause t.solver [ Sat.negate n; Sat.negate v; hi ];
        Sat.add_clause t.solver [ Sat.negate n; v; lo ];
        Sat.add_clause t.solver [ n; Sat.negate v; Sat.negate hi ];
        Sat.add_clause t.solver [ n; v; Sat.negate lo ];
        Hashtbl.add t.node_lit key n;
        n

let assert_bdd t ~step d = Sat.add_clause t.solver [ lit_of_bdd t ~step d ]

(* [with_init:false] omits the initial-state constraints at step 0,
   which is what the inductive step of k-induction needs: a run
   starting anywhere. *)
let create ?(with_init = true) enc =
  let solver = Sat.create () in
  let tv = Sat.new_var solver in
  Sat.add_clause solver [ Sat.pos tv ];
  let t =
    {
      enc;
      solver;
      true_lit = Sat.pos tv;
      step_bits = [];
      depth = 0;
      node_lit = Hashtbl.create 4096;
      init_parts =
        List.map (Enc.pred enc) (Enc.model enc).Model.init;
      trans_parts = Enc.trans_parts enc;
      valid_cur = Enc.valid enc ~primed:false;
    }
  in
  t.step_bits <- [ new_step_bits t ];
  assert_bdd t ~step:0 t.valid_cur;
  if with_init then List.iter (assert_bdd t ~step:0) t.init_parts;
  t

(* Extend the unrolling by one step: fresh bits for step [depth+1], the
   transition constraints between [depth] and [depth+1], and the domain
   validity of the new step. *)
let extend t =
  let new_bits = new_step_bits t in
  let from_step = t.depth in
  t.step_bits <- new_bits :: t.step_bits;
  t.depth <- t.depth + 1;
  List.iter (assert_bdd t ~step:from_step) t.trans_parts;
  assert_bdd t ~step:t.depth t.valid_cur

let decode_model t =
  let n = Enc.nbits t.enc in
  let model_enc = t.enc in
  let states =
    Array.init (t.depth + 1) (fun step ->
        let bits = bits_at t step in
        let raw = Array.init n (fun b -> Sat.value t.solver bits.(b)) in
        (* Rebuild each variable's value from its bits. *)
        let mdl = Enc.model model_enc in
        let s = Array.make (List.length mdl.Model.vars) (Expr.Bool false) in
        List.iteri
          (fun vi (name, _) ->
            let ve = Enc.var_enc model_enc name in
            let idx = ref 0 in
            for j = ve.Enc.nbits - 1 downto 0 do
              idx := (!idx * 2) + if raw.(ve.Enc.first_bit + j) then 1 else 0
            done;
            s.(vi) <- ve.Enc.values.(!idx))
          mdl.Model.vars;
        s)
  in
  states

(* Check whether a bad state is reachable in exactly [t.depth] steps. *)
let check_at_current_depth t ~bad_bdd =
  let bad_lit = lit_of_bdd t ~step:t.depth bad_bdd in
  match Sat.solve ~assumptions:[ bad_lit ] t.solver with
  | Sat.Sat -> Some (decode_model t)
  | Sat.Unsat -> None

(* Flush the solver's effort counters into an observability track at
   the end of a run (counter cells add, so base+step sessions of
   k-induction accumulate into the same names). *)
let flush_counters ?(prefix = "") t obs =
  if Obs.enabled obs then
    List.iter
      (fun (name, v) -> Obs.incr_by obs (prefix ^ name) v)
      (Sat.counters t.solver)

let check ?(max_depth = 30) ?(cancel = fun () -> false) ?(obs = Obs.disabled)
    enc ~bad =
  let t = create enc in
  let bad_bdd = Enc.pred enc bad in
  let depth_g = Obs.gauge obs "bmc.depth" in
  let rec go () =
    (* Polled once per depth: when cancelled, every depth strictly
       below the current one has already been checked clean, so the
       bounded claim is honest (and vacuous at -1 when depth 0 was
       never finished). *)
    if cancel () then begin
      Obs.instant obs "bmc.cancelled";
      No_counterexample (t.depth - 1)
    end
    else begin
      Obs.record depth_g t.depth;
      let sp = Obs.start obs "bmc.solve_depth" in
      let r = check_at_current_depth t ~bad_bdd in
      Obs.stop sp;
      match r with
      | Some trace -> Counterexample trace
      | None ->
          if t.depth >= max_depth then No_counterexample t.depth
          else begin
            Obs.with_span obs "bmc.unroll" (fun () -> extend t);
            go ()
          end
    end
  in
  let result = go () in
  flush_counters t obs;
  result

(* Block one whole trace: at least one state bit of one step must
   differ. *)
let block_trace t trace =
  let clause = ref [] in
  Array.iteri
    (fun step state ->
      let bits = bits_at t step in
      let mdl = Enc.model t.enc in
      List.iteri
        (fun vi (name, _) ->
          let ve = Enc.var_enc t.enc name in
          let idx =
            let rec find i =
              if Expr.value_equal ve.Enc.values.(i) state.(vi) then i
              else find (i + 1)
            in
            find 0
          in
          for j = 0 to ve.Enc.nbits - 1 do
            let v = bits.(ve.Enc.first_bit + j) in
            let lit =
              if (idx lsr j) land 1 = 1 then Sat.neg v else Sat.pos v
            in
            clause := lit :: !clause
          done)
        mdl.Model.vars)
    trace;
  Sat.add_clause t.solver !clause

(* Enumerate distinct counterexamples at the shortest violating depth:
   find the minimal depth as {!check} does, then repeatedly block the
   trace just found and re-solve until the depth is exhausted or
   [limit] traces have been produced. *)
let enumerate ?(max_depth = 30) ?(limit = 16) enc ~bad =
  let t = create enc in
  let bad_bdd = Enc.pred enc bad in
  let rec find_depth () =
    match check_at_current_depth t ~bad_bdd with
    | Some trace -> Some trace
    | None ->
        if t.depth >= max_depth then None
        else begin
          extend t;
          find_depth ()
        end
  in
  match find_depth () with
  | None -> []
  | Some first ->
      let rec collect acc n =
        if n >= limit then List.rev acc
        else begin
          block_trace t (List.hd acc);
          match check_at_current_depth t ~bad_bdd with
          | Some trace -> collect (trace :: acc) (n + 1)
          | None -> List.rev acc
        end
      in
      collect [ first ] 1

let solver_stats t = Sat.stats t.solver

(* Lower-level access for the k-induction engine. *)
let depth t = t.depth
let solver t = t.solver
let step_vars t ~step = bits_at t step
let assert_pred t ~step d = assert_bdd t ~step d
let pred_lit t ~step d = lit_of_bdd t ~step d
let decode t = decode_model t
