(* CTL model checking over the BDD engine.

   Formulas are evaluated bottom-up to the BDD of the states satisfying
   them, using backward fixpoints over the transition relation:

     EX f       = pre(f)
     E[f U g]   = lfp Z. g \/ (f /\ EX Z)
     EG f       = gfp Z. f /\ EX Z

   and the remaining operators by the usual dualities. The transition
   relations of relational models are total in practice (and the TTA
   models are checked deadlock-free in the test suite), so the CTL
   dualities are sound.

   [holds] restricts judgment to the reachable states, which is what
   one almost always means: "from every reachable state, recovery is
   possible" is AG (EF recovered). *)

type t =
  | Atom of Expr.t  (** a boolean state predicate *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | EX of t
  | EF of t
  | EG of t
  | EU of t * t
  | AX of t
  | AF of t
  | AG of t
  | AU of t * t

let atom e = Atom e

let rec pp ppf =
  let open Format in
  function
  | Atom e -> fprintf ppf "(%a)" Expr.pp e
  | Not f -> fprintf ppf "!%a" pp f
  | And (f, g) -> fprintf ppf "(%a & %a)" pp f pp g
  | Or (f, g) -> fprintf ppf "(%a | %a)" pp f pp g
  | Imp (f, g) -> fprintf ppf "(%a -> %a)" pp f pp g
  | EX f -> fprintf ppf "EX %a" pp f
  | EF f -> fprintf ppf "EF %a" pp f
  | EG f -> fprintf ppf "EG %a" pp f
  | EU (f, g) -> fprintf ppf "E[%a U %a]" pp f pp g
  | AX f -> fprintf ppf "AX %a" pp f
  | AF f -> fprintf ppf "AF %a" pp f
  | AG f -> fprintf ppf "AG %a" pp f
  | AU (f, g) -> fprintf ppf "A[%a U %a]" pp f pp g

let to_string f = Format.asprintf "%a" pp f

(* Least fixpoint of a monotone BDD transformer, from below. *)
let lfp step =
  let rec go z =
    let z' = step z in
    if Bdd.equal z z' then z else go z'
  in
  go Bdd.zero

let gfp mgr valid step =
  (* From above; the top element is the set of validly-encoded
     states. *)
  ignore mgr;
  let rec go z =
    let z' = step z in
    if Bdd.equal z z' then z else go z'
  in
  go valid

(* The set of states satisfying the formula, as a BDD over current
   bits. All results are intersected with the valid-encoding set so
   negation cannot smuggle in junk codes. *)
let rec sat enc f =
  let m = Enc.mgr enc in
  let valid = Enc.valid enc ~primed:false in
  let ex z = Bdd.dand m valid (Reach.preimage enc z) in
  match f with
  | Atom e -> Bdd.dand m valid (Enc.pred enc e)
  | Not f -> Bdd.dand m valid (Bdd.dnot m (sat enc f))
  | And (f, g) -> Bdd.dand m (sat enc f) (sat enc g)
  | Or (f, g) -> Bdd.dor m (sat enc f) (sat enc g)
  | Imp (f, g) -> sat enc (Or (Not f, g))
  | EX f -> ex (sat enc f)
  | EF f ->
      let target = sat enc f in
      lfp (fun z -> Bdd.dor m target (ex z))
  | EG f ->
      let inv = sat enc f in
      gfp m valid (fun z -> Bdd.dand m inv (ex z))
  | EU (f, g) ->
      let hold = sat enc f and target = sat enc g in
      lfp (fun z -> Bdd.dor m target (Bdd.dand m hold (ex z)))
  | AX f -> sat enc (Not (EX (Not f)))
  | AF f -> sat enc (Not (EG (Not f)))
  | AG f -> sat enc (Not (EF (Not f)))
  | AU (f, g) ->
      (* A[f U g] = ~(E[~g U ~f & ~g] \/ EG ~g) *)
      sat enc (Not (Or (EU (Not g, And (Not f, Not g)), EG (Not g))))

type verdict = {
  holds : bool;  (** on every reachable state *)
  holds_initially : bool;  (** on every initial state *)
  failing_state : Model.state option;
      (** a reachable state violating the formula, when [holds] is
          false *)
}

let check ?reachable ?cancel ?obs enc f =
  let m = Enc.mgr enc in
  let good = sat enc f in
  let reach =
    match reachable with
    | Some r -> r
    | None -> Reach.reachable_set ?cancel ?obs enc
  in
  let violating = Bdd.dand m reach (Bdd.dnot m good) in
  let init_bad = Bdd.dand m (Enc.init_bdd enc) (Bdd.dnot m good) in
  {
    holds = Bdd.is_zero violating;
    holds_initially = Bdd.is_zero init_bad;
    failing_state =
      (if Bdd.is_zero violating then None
       else Some (Enc.decode_state enc violating));
  }
