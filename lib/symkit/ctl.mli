(** CTL model checking over the BDD engine.

    Formulas are evaluated bottom-up to the set of satisfying states
    with backward fixpoints; {!check} then judges the formula on the
    reachable (or initial) states. The dualities used assume a total
    transition relation — relational models should be checked
    deadlock-free first ({!Reach.deadlocked}). *)

type t =
  | Atom of Expr.t  (** a boolean state predicate *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | EX of t
  | EF of t
  | EG of t
  | EU of t * t
  | AX of t
  | AF of t
  | AG of t
  | AU of t * t

val atom : Expr.t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val sat : Enc.t -> t -> Bdd.t
(** The set of states satisfying the formula (over current bits,
    intersected with the valid-encoding set). *)

type verdict = {
  holds : bool;  (** on every reachable state *)
  holds_initially : bool;  (** on every initial state *)
  failing_state : Model.state option;
      (** a reachable violating state, when [holds] is false *)
}

val check :
  ?reachable:Bdd.t -> ?cancel:(unit -> bool) -> ?obs:Obs.t -> Enc.t -> t ->
  verdict
(** [reachable] may be supplied to reuse a previously computed
    fixpoint; otherwise [cancel]/[obs] are threaded into the
    {!Reach.reachable_set} computation (a cancelled fixpoint judges
    against the lower bound computed so far). *)
