(** Synthetic load for the verification daemon.

    Replays a seeded stream of {!Protocol} requests sampled from the
    Section 5 configuration matrix against a running {!Server}, in one
    of two classic load-generation shapes:

    - {b open loop} ([Open_loop rate]): one connection; requests are
      sent at the target rate regardless of completions (the
      arrival-driven regime where queueing and shedding appear), while
      a reader collects responses as they come.
    - {b closed loop} ([Closed_loop c]): [c] connections, each its own
      domain, each keeping exactly one request outstanding — the
      fixed-concurrency regime, which measures service capacity.

    The stream is deterministic for a given seed, so distinct requests
    repeat — exercising the daemon's coalescing and cache paths on
    purpose. The report carries throughput, latency percentiles over
    the answered requests, and the outcome/dedup breakdown.

    {b Retries.} A dropped connection (ECONNRESET/EPIPE/EOF — e.g. the
    daemon's chaos mode aborting a socket) or an [engine_failed] error
    response does not forfeit the request: the loadgen reconnects with
    capped exponential backoff and resends, spending up to
    [retry_budget] retries per request. Only a request whose budget is
    exhausted counts as a protocol error. [retries] and
    [engine_failed] in the report count the resends and the
    engine-failure responses observed across all attempts;
    [conn_retries]/[engine_retries] split the resends by cause, so a
    chaos run can tell link loss from engine failure. *)

type mode = Open_loop of float  (** target requests/second *)
          | Closed_loop of int  (** concurrent in-flight requests *)

type report = {
  requests : int;  (** sent *)
  ok : int;  (** [status:"ok"] responses *)
  degraded : int;
      (** [status:"degraded"] responses — partial answers carrying a
          certified [clean_depth] (see {!Protocol}); counted apart from
          [ok] and never retried *)
  holds : int;
  violated : int;
  unknown : int;
  deadline_exceeded : int;  (** subset of [unknown] *)
  overloaded : int;
  cancelled : int;
  protocol_errors : int;
      (** [status:"error"] responses plus undecodable response lines
          and requests still unanswered after the retry budget *)
  retries : int;  (** resends after connection loss or engine failure
                      ([conn_retries + engine_retries], kept for
                      back-compat) *)
  conn_retries : int;
      (** resends caused by a lost/garbled connection (e.g. a
          [drop]-injected link fault downstream) *)
  engine_retries : int;
      (** resends caused by an [engine_failed] error response *)
  engine_failed : int;
      (** [code:"engine_failed"] responses seen (retried ones included) *)
  cache_hits : int;
  coalesced : int;
  session_reuses : int;
      (** answers flagged [reused_session] — served from a warm pooled
          solver session (always [0] against a daemon without
          [--sessions]) *)
  hedged : int;
      (** answers flagged ["hedged":true] — won by a duplicate leg the
          router raced (always [0] against a plain daemon) *)
  breaker_opens : int;
      (** circuit-breaker trips — not observable over the wire, so [0]
          here; in-process bench drivers override it from
          router stats *)
  wall_s : float;  (** first send to last response *)
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;  (** percentiles/max over answered requests *)
  per_worker : (string * int) list;
      (** answered requests per serving cluster worker, sorted by
          name, from the router's [worker] response annotation; empty
          against a plain daemon *)
  imbalance : float;
      (** max/mean of [per_worker] counts ([1.0] = perfectly even;
          [0.0] when no worker annotations were seen) *)
}

val run :
  ?seed:int ->
  ?exhaustive:bool ->
  ?nodes:int ->
  ?depth:int ->
  ?nodes_choices:int list ->
  ?depths:int list ->
  ?deadline_ms:int ->
  ?configs:string list ->
  ?engines:string list ->
  ?retry_budget:int ->
  mode:mode ->
  requests:int ->
  Server.addr ->
  report
(** Defaults: [seed 1], [nodes 2], [depth 24], no deadline, all four
    feature sets, engine ["bdd"], [retry_budget 2] (per request; [0]
    disables retries). [engines] entries are request [engine] values,
    so ["race"] is allowed. [nodes_choices]/[depths], when non-empty,
    override [nodes]/[depth] with per-request sampling — distinct
    (config, nodes) pairs hash to distinct cluster shards and distinct
    depths defeat coalescing, so a widened stream can keep many
    workers busy at once.

    The stream samples iid by default — duplicates arrive on purpose
    and exercise dedup. [~exhaustive:true] instead enumerates the full
    configs x engines x nodes x depths cross product in a seeded
    shuffle (cycling when [requests] exceeds it): no duplicate
    requests, so each cluster shard's work is a deterministic function
    of the workload — what a scaling bench needs, since duplicates of
    inconclusive (uncacheable) verdicts only coalesce when they race
    into the same in-flight window, making total work vary run to run.
    @raise Unix.Unix_error when the daemon cannot be reached. *)

val report_to_json : mode:mode -> report -> Json.t
val pp_report : Format.formatter -> report -> unit
