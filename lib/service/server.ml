(* select-loop network front end — see the interface for the design. *)

type addr = Unix_socket of string | Tcp of string * int

let addr_of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      (* Port 0 is the kernel's "pick one": the bound port is
         recoverable via [bound_addr] and announced by the daemon's
         readiness line. *)
      | Some p when p >= 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "invalid port in %S" s))
  | None -> Ok (Unix_socket s)

let addr_to_string = function
  | Unix_socket p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* One client connection. The loop domain is the only reader and the
   only closer of [fd]; worker callbacks write under [wlock]. [closed]
   means "no further writes" (client hung up or a write failed); the
   fd itself is only closed once [pending] callbacks have all fired,
   so a recycled descriptor can never receive another request's
   response. *)
type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  wlock : Mutex.t;
  mutable closed : bool;
  mutable fd_open : bool;
  mutable pending : int;
}

type t = {
  sched : Scheduler.t;
  bound : addr;  (** the address actually bound (ephemeral port resolved) *)
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  stopping : bool Atomic.t;
  finished : bool Atomic.t;  (** loop domain exited (drain included) *)
  grace : float;
  faults : Resilience.Faults.t;
  join_lock : Mutex.t;
  mutable loop : unit Domain.t option;
}

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* A signal mid-write is not a failed write; resume where the
           syscall left off. *)
        write_all fd s off len

(* Half-close the socket without releasing the descriptor (the loop
   domain's sweep still owns the [Unix.close]): the peer sees EOF
   immediately — even while the select loop is parked — instead of
   waiting forever for a response that will never come. *)
let conn_abort conn =
  conn.closed <- true;
  if conn.fd_open then
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()

let conn_write ~faults conn resp =
  Mutex.lock conn.wlock;
  (if not conn.closed then
     match
       Resilience.Faults.hit faults Resilience.Faults.Sock_send;
       Resilience.Faults.corrupt faults Resilience.Faults.Sock_send
         (Protocol.response_line resp)
     with
     | exception Resilience.Faults.Injected _ ->
         (* Injected send failure: the response is lost exactly as if
            the kernel had dropped the connection mid-write. Abort so
            the client learns immediately and can retry. *)
         conn_abort conn
     | s -> (
         match write_all conn.fd s 0 (String.length s) with
         | () -> ()
         | exception Unix.Unix_error _ ->
             (* EPIPE/ECONNRESET (SIGPIPE is ignored process-wide): the
                client hung up mid-write. Abort the connection; the
                select loop and its other clients are unaffected. *)
             conn_abort conn));
  Mutex.unlock conn.wlock

let conn_close conn =
  Mutex.lock conn.wlock;
  conn.closed <- true;
  if conn.fd_open then begin
    conn.fd_open <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.wlock

(* ------------------------------------------------------------------ *)
(* Request handling *)

let verdict_of (o : Scheduler.outcome) =
  match o.Scheduler.result.Portfolio.verdict with
  | Tta_model.Engine.Holds { detail } -> Protocol.Holds { detail }
  | Tta_model.Engine.Unknown { detail } ->
      Protocol.Unknown
        {
          detail;
          reason = (if o.Scheduler.expired then Some "deadline_exceeded" else None);
        }
  | Tta_model.Engine.Violated { trace; _ } ->
      Protocol.Violated
        {
          steps = Array.length trace;
          trace =
            Array.to_list
              (Array.map
                 (fun state ->
                   Array.to_list
                     (Array.map Symkit.Expr.value_to_string state))
                 trace);
        }

let answer_of ~id (o : Scheduler.outcome) =
  let r = o.Scheduler.result in
  (* Graceful degradation: an inconclusive outcome whose warm session
     already certified some depths answers with that content instead
     of a contentless failure — [code] says whether the engine died or
     the deadline ran out. *)
  let degraded code =
    Protocol.Degraded
      {
        id;
        code;
        clean_depth = o.Scheduler.clean_depth;
        engine = Tta_model.Engine.id_to_string r.Portfolio.engine;
        wall_ms = r.Portfolio.wall_s *. 1000.;
        queue_ms = o.Scheduler.queue_ms;
        reused_session = o.Scheduler.reused_session;
        warm_depth = o.Scheduler.warm_depth;
      }
  in
  (* A run in which every engine crashed or hung is not a verdict; it
     is a structured failure the client may retry. *)
  if Portfolio.all_failed r then
    if o.Scheduler.clean_depth >= 0 then degraded Protocol.code_engine_failed
    else
      Protocol.Error
        {
          id = Some id;
          code = Protocol.code_engine_failed;
          reason =
            (match r.Portfolio.verdict with
            | Tta_model.Engine.Unknown { detail } -> detail
            | _ -> "all engines failed");
        }
  else if
    o.Scheduler.expired && o.Scheduler.clean_depth >= 0
    && match r.Portfolio.verdict with
       | Tta_model.Engine.Unknown _ -> true
       | _ -> false
  then degraded Protocol.code_deadline_exceeded
  else
    Protocol.Answer
      {
        id;
        verdict = verdict_of o;
        engine = Tta_model.Engine.id_to_string r.Portfolio.engine;
        cache_hit = r.Portfolio.cache_hit;
        coalesced = o.Scheduler.coalesced;
        wall_ms = r.Portfolio.wall_s *. 1000.;
        queue_ms = o.Scheduler.queue_ms;
        reused_session = o.Scheduler.reused_session;
        warm_depth = o.Scheduler.warm_depth;
      }

let handle_line t conn line =
  let line = String.trim line in
  if line <> "" then
    match Protocol.decode_incoming_line line with
    | Error reason ->
        conn_write ~faults:t.faults conn
          (Protocol.Error
             {
               id = Protocol.request_id_of_line line;
               code = Protocol.code_bad_request;
               reason;
             })
    | Ok (Protocol.Ping { id }) ->
        (* Liveness probe: answered inline from the select loop, so a
           pong round-trip measures the daemon's event loop, not its
           verification backlog. *)
        conn_write ~faults:t.faults conn (Protocol.Pong { id })
    | Ok (Protocol.Verify req) ->
        let deadline =
          Option.map
            (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
            req.Protocol.deadline_ms
        in
        let id = req.Protocol.id in
        Mutex.lock conn.wlock;
        conn.pending <- conn.pending + 1;
        Mutex.unlock conn.wlock;
        let callback o =
          conn_write ~faults:t.faults conn (answer_of ~id o);
          Mutex.lock conn.wlock;
          conn.pending <- conn.pending - 1;
          Mutex.unlock conn.wlock
        in
        let admission =
          Scheduler.submit t.sched ?deadline ?family:req.Protocol.family
            ~engines:req.Protocol.engines ~max_depth:req.Protocol.max_depth
            ~callback req.Protocol.cfg
        in
        (match admission with
        | `Queued | `Coalesced | `Cache_hit -> ()
        | `Shed | `Draining ->
            Mutex.lock conn.wlock;
            conn.pending <- conn.pending - 1;
            Mutex.unlock conn.wlock;
            conn_write ~faults:t.faults conn
              (match admission with
              | `Shed -> Protocol.Overloaded { id }
              | _ -> Protocol.Cancelled { id; reason = "shutting down" }))

(* Split the connection buffer on newlines, handing every complete
   line to [k] and keeping the trailing partial line buffered. *)
let drain_lines conn k =
  let s = Buffer.contents conn.buf in
  let n = String.length s in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       k (String.sub s !start (i - !start));
       start := i + 1
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear conn.buf;
    if !start < n then Buffer.add_substring conn.buf s !start (n - !start)
  end

let handle_read t scratch conn =
  match
    Resilience.Faults.hit t.faults Resilience.Faults.Sock_recv;
    Unix.read conn.fd scratch 0 (Bytes.length scratch)
  with
  | exception Resilience.Faults.Injected _ ->
      (* Injected receive failure: drop the connection as a flaky NIC
         would. The client reconnects and retries. *)
      Mutex.lock conn.wlock;
      conn_abort conn;
      Mutex.unlock conn.wlock
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* Interrupted before any bytes arrived; select will offer the
         descriptor again. Nothing was lost. *)
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.closed <- true
  | 0 -> conn.closed <- true
  | n ->
      Buffer.add_subbytes conn.buf scratch 0 n;
      drain_lines conn (handle_line t conn)

(* ------------------------------------------------------------------ *)
(* The select loop *)

let loop t =
  let conns = ref [] in
  let scratch = Bytes.create 65536 in
  let running = ref true in
  while !running do
    (* Sweep connections that hung up and owe no more responses. *)
    let dead, live =
      List.partition (fun c -> c.closed && c.pending = 0) !conns
    in
    List.iter conn_close dead;
    conns := live;
    let read_fds =
      t.pipe_r :: t.listen_fd
      :: List.filter_map
           (fun c -> if c.closed then None else Some c.fd)
           live
    in
    match Unix.select read_fds [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.pipe_r ready then running := false
        else begin
          if List.mem t.listen_fd ready then begin
            match Unix.accept t.listen_fd with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                conns :=
                  {
                    fd;
                    buf = Buffer.create 256;
                    wlock = Mutex.create ();
                    closed = false;
                    fd_open = true;
                    pending = 0;
                  }
                  :: !conns
          end;
          List.iter
            (fun c ->
              if (not c.closed) && List.mem c.fd ready then
                handle_read t scratch c)
            !conns
        end
  done;
  (* Graceful drain: no new connections or requests; every accepted
     computation is answered (the workers keep writing responses while
     we block here), then the connections close. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Scheduler.drain ~grace:t.grace t.sched;
  List.iter conn_close !conns;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  try Unix.close t.pipe_w with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let bind_listen addr =
  match addr with
  | Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> raise (Unix.Unix_error (Unix.EINVAL, "bind", host)))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

let start ?workers ?queue_cap ?cache ?sessions ?obs ?supervisor
    ?(faults = Resilience.Faults.disabled) ?(grace = 5.0) addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listen addr in
  (* Resolve a kernel-assigned ephemeral port into the address the
     daemon can announce. *)
  let bound =
    match addr with
    | Tcp (host, 0) -> (
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> Tcp (host, port)
        | _ -> addr)
    | _ -> addr
  in
  let pipe_r, pipe_w = Unix.pipe () in
  let sched =
    Scheduler.create ?workers ?queue_cap ?cache ?sessions ?obs ?supervisor
      ~faults ()
  in
  let t =
    {
      sched;
      bound;
      listen_fd;
      pipe_r;
      pipe_w;
      stopping = Atomic.make false;
      finished = Atomic.make false;
      grace;
      faults;
      join_lock = Mutex.create ();
      loop = None;
    }
  in
  t.loop <-
    Some
      (Domain.spawn (fun () ->
           Fun.protect
             ~finally:(fun () -> Atomic.set t.finished true)
             (fun () -> loop t)));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.pipe_w "x" 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  (* Poll rather than block straight into [Domain.join]: only the main
     domain runs OCaml signal handlers, and only at safepoints — a
     main domain parked inside [join] would never execute the SIGTERM
     handler that is supposed to stop the loop. The sleep loop reaches
     a safepoint every iteration (and immediately after a signal
     interrupts the sleep). *)
  while not (Atomic.get t.finished) do
    Unix.sleepf 0.05
  done;
  Mutex.lock t.join_lock;
  (match t.loop with
  | None -> ()
  | Some d ->
      t.loop <- None;
      Domain.join d);
  Mutex.unlock t.join_lock

let scheduler t = t.sched
let bound_addr t = t.bound

let serve ?workers ?queue_cap ?cache ?sessions ?obs ?supervisor ?faults ?grace
    ?(on_ready = fun (_ : t) -> ()) addr =
  let t =
    start ?workers ?queue_cap ?cache ?sessions ?obs ?supervisor ?faults ?grace
      addr
  in
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  on_ready t;
  wait t
