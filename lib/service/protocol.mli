(** The verification daemon's wire protocol.

    JSON lines in both directions: a client writes one request object
    per line, the daemon answers one response object per line (not
    necessarily in request order — responses carry the request's [id]).

    A {b request}:
    {v
{"id":"r1","config":"full-shifting","nodes":4,"engine":"bdd",
 "depth":24,"deadline_ms":5000}
    v}
    [id] and [config] are required; [engine] is a single engine name or
    ["race"] (the default) for the whole portfolio; [depth] defaults to
    24; [deadline_ms], when present, bounds the request's wall clock —
    an inconclusive answer past the deadline reports
    [reason:"deadline_exceeded"]. [forbid_cold_start_duplication]
    (bool) selects the paper's second full-shifting counterexample.
    [family] (string, optional) overrides the session-pool family key —
    normally the daemon derives it from the compiled model's
    fingerprint; a client that already knows its traffic's family can
    pin it explicitly. The override is a routing hint only: the pool
    verifies each entry's model fingerprint at checkout, so a stale or
    wrong [family] costs a cold start, never a verdict computed
    against a different model; requests with different [family] values
    are never coalesced together.

    A {b response} is one of:
    - [status:"ok"] — a verdict ([holds]/[violated]/[unknown]) with the
      winning engine, wall and queue milliseconds, and whether it was
      served from the cache or coalesced onto another in-flight
      request. A [violated] answer carries the counterexample trace,
      value-rendered per state. [reused_session]/[warm_depth] attribute
      warm-session reuse: whether the run checked out a live solver
      session from the pool, and how deep that session's unrolling
      already was (see doc/sessions.md).
    - [status:"degraded"] — the request could not be answered in full
      ([code] says why: [deadline_exceeded] or [engine_failed]) but
      its warm BMC session had already certified some depths, so the
      answer still carries content: [clean_depth] is the largest [k]
      with no counterexample up to depth [k] (see doc/sessions.md and
      doc/cluster.md). Strictly better than a bare error: a client
      that only needed a shallow guarantee may be done.
    - [status:"overloaded"] — shed by admission control (bounded
      queue full). The request was {e not} and will not be run.
    - [status:"cancelled"] — accepted but abandoned, e.g. by a
      shutdown drain; [reason] says why.
    - [status:"error"] — the line was not a valid request
      ([code:"bad_request"]) or every engine of an accepted request
      failed ([code:"engine_failed"]); [reason] explains, [id] is
      echoed when one could be parsed.

    Every non-[ok] response additionally carries a machine-readable
    [code] — one of [overloaded], [draining], [bad_request],
    [engine_failed], [deadline_exceeded] — so clients can branch on
    the cause (e.g. retry on [engine_failed], back off on
    [overloaded]) without parsing the human-oriented [reason].

    Decoding is total: every malformed input maps to [Error _], never
    an exception. *)

type request = {
  id : string;
  cfg : Tta_model.Configs.t;
  engines : Tta_model.Engine.id list;
      (** singleton for a named engine; the full portfolio for
          ["race"] *)
  max_depth : int;
  deadline_ms : int option;
  family : string option;
      (** optional session-pool family override (model structure modulo
          bound/property); [None] means "derive from the fingerprint" *)
}

val request :
  id:string ->
  config:string ->
  ?nodes:int ->
  ?engine:string ->
  ?depth:int ->
  ?deadline_ms:int ->
  ?family:string ->
  ?forbid_cold_start_duplication:bool ->
  unit ->
  Json.t
(** Build a request object for the wire — the client-side encoder used
    by the load generator and the tests. Performs no validation; the
    daemon's decoder is the single validator. *)

val decode_request : Json.t -> (request, string) result
(** Validate a request object into a runnable form (the feature-set
    name becomes the Section 5 configuration via the named
    constructors, so a served instance is exactly the experiment
    one). *)

val decode_request_line : string -> (request, string) result
(** [decode_request] after parsing; a parse failure is an [Error]
    carrying the parser's message. *)

val request_id_of_line : string -> string option
(** Best-effort [id] extraction from a line that may fail validation —
    for echoing the id in an [error] response. (Responses carry [id]
    in the same position, so the cluster router also uses this to
    attribute worker response lines.) *)

(** {1 Incoming classification}

    Besides verification requests the daemon answers {b health pings}:
    [{"id":"h1","op":"ping"}] is answered immediately with
    [{"id":"h1","status":"pong"}], bypassing the scheduler. The
    cluster router pings its workers with these; any client may use
    them as a liveness probe. *)

type incoming =
  | Verify of request
  | Ping of { id : string }

val ping : id:string -> Json.t
(** Build a ping request object for the wire. *)

val decode_incoming : Json.t -> (incoming, string) result
val decode_incoming_line : string -> (incoming, string) result
(** Classify one incoming line: a [{"op":"ping"}] object becomes
    {!Ping}; anything else must validate as a {!request}. *)

(** {1 Responses} *)

type verdict =
  | Holds of { detail : string }
  | Violated of { steps : int; trace : string list list }
      (** one rendered value per model variable per state *)
  | Unknown of { detail : string; reason : string option }
      (** [reason] is a machine-readable cause
          ([Some "deadline_exceeded"]) on top of the human [detail] *)

type response =
  | Answer of {
      id : string;
      verdict : verdict;
      engine : string;
      cache_hit : bool;
      coalesced : bool;
      wall_ms : float;
      queue_ms : float;
      reused_session : bool;
          (** the run checked out a warm solver session from the pool
              (always [false] when the daemon runs without
              [--sessions]) *)
      warm_depth : int;
          (** the checked-out session's unrolling depth before the run
              (0 on a cold session) *)
    }
  | Degraded of {
      id : string;
      code : string;
          (** {!code_deadline_exceeded} or {!code_engine_failed} *)
      clean_depth : int;
          (** largest depth certified counterexample-free before the
              run failed or timed out *)
      engine : string;
      wall_ms : float;
      queue_ms : float;
      reused_session : bool;
      warm_depth : int;
    }  (** wire [status:"degraded"] — a partial answer with content *)
  | Overloaded of { id : string }  (** wire [code]: [overloaded] *)
  | Cancelled of { id : string; reason : string }
      (** wire [code]: [draining] *)
  | Error of { id : string option; code : string; reason : string }
      (** [code] is {!code_bad_request} or {!code_engine_failed} *)
  | Pong of { id : string }
      (** wire [status:"pong"] — the answer to an [op:"ping"] probe *)

val code_overloaded : string
val code_draining : string
val code_bad_request : string
val code_engine_failed : string
val code_deadline_exceeded : string
(** The machine-readable rejection/degradation codes; see the format
    notes above. *)

val response_id : response -> string option

val encode_response : response -> Json.t

val response_line : response -> string
(** The encoded response as one newline-terminated wire line. *)

val decode_response : Json.t -> (response, string) result
val decode_response_line : string -> (response, string) result
