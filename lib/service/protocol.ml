(* JSON-lines wire protocol — see the interface for the format. *)

type request = {
  id : string;
  cfg : Tta_model.Configs.t;
  engines : Tta_model.Engine.id list;
  max_depth : int;
  deadline_ms : int option;
  family : string option;
}

let request ~id ~config ?nodes ?engine ?depth ?deadline_ms ?family
    ?forbid_cold_start_duplication () =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    ([ ("id", Json.String id); ("config", Json.String config) ]
    @ opt "nodes" (fun n -> Json.Int n) nodes
    @ opt "engine" (fun e -> Json.String e) engine
    @ opt "depth" (fun d -> Json.Int d) depth
    @ opt "deadline_ms" (fun d -> Json.Int d) deadline_ms
    @ opt "family" (fun f -> Json.String f) family
    @ opt "forbid_cold_start_duplication"
        (fun b -> Json.Bool b)
        forbid_cold_start_duplication)

(* ------------------------------------------------------------------ *)
(* Request decoding *)

let ( let* ) = Result.bind

let field name j = Json.member name j

let required_string name j =
  match Option.bind (field name j) Json.string_value with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let optional_int name j =
  match field name j with
  | None -> Ok None
  | Some v -> (
      match Json.int_value v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "field %S must be an integer" name))

let optional_string name j =
  match field name j with
  | None -> Ok None
  | Some v -> (
      match Json.string_value v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S must be a string" name))

let optional_bool name j =
  match field name j with
  | None -> Ok None
  | Some v -> (
      match Json.bool_value v with
      | Some b -> Ok (Some b)
      | None -> Error (Printf.sprintf "field %S must be a boolean" name))

let config_of ~feature ~nodes ~forbid =
  match (feature : Guardian.Feature_set.t) with
  | Guardian.Feature_set.Passive -> Tta_model.Configs.passive ?nodes ()
  | Guardian.Feature_set.Time_windows -> Tta_model.Configs.time_windows ?nodes ()
  | Guardian.Feature_set.Small_shifting ->
      Tta_model.Configs.small_shifting ?nodes ()
  | Guardian.Feature_set.Full_shifting ->
      Tta_model.Configs.full_shifting ?nodes
        ?forbid_cold_start_duplication:forbid ()

let decode_request j =
  match j with
  | Json.Obj _ ->
      let* id = required_string "id" j in
      let* config = required_string "config" j in
      let* feature =
        match Guardian.Feature_set.of_string config with
        | Some fs -> Ok fs
        | None -> Error (Printf.sprintf "unknown config %S" config)
      in
      let* nodes = optional_int "nodes" j in
      let* () =
        match nodes with
        | Some n when n < 2 -> Error "field \"nodes\" must be at least 2"
        | _ -> Ok ()
      in
      let* engines =
        match Option.bind (field "engine" j) Json.string_value with
        | None | Some "race" ->
            Ok (List.map (fun e -> e.Tta_model.Engine.id) Tta_model.Engine.all)
        | Some s -> (
            match Tta_model.Engine.id_of_string s with
            | Some e -> Ok [ e ]
            | None -> Error (Printf.sprintf "unknown engine %S" s))
      in
      let* depth = optional_int "depth" j in
      let* () =
        match depth with
        | Some d when d < 1 -> Error "field \"depth\" must be at least 1"
        | _ -> Ok ()
      in
      let* deadline_ms = optional_int "deadline_ms" j in
      let* () =
        match deadline_ms with
        | Some d when d < 0 -> Error "field \"deadline_ms\" must be >= 0"
        | _ -> Ok ()
      in
      let* forbid = optional_bool "forbid_cold_start_duplication" j in
      let* family = optional_string "family" j in
      Ok
        {
          id;
          cfg = config_of ~feature ~nodes ~forbid;
          engines;
          max_depth = Option.value ~default:24 depth;
          deadline_ms;
          family;
        }
  | _ -> Error "request must be a JSON object"

let decode_request_line line =
  match Json.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> decode_request j

(* ------------------------------------------------------------------ *)
(* Incoming classification: verification requests vs. health pings *)

type incoming = Verify of request | Ping of { id : string }

let ping ~id = Json.Obj [ ("id", Json.String id); ("op", Json.String "ping") ]

let decode_incoming j =
  match j with
  | Json.Obj _ -> (
      match Option.bind (field "op" j) Json.string_value with
      | Some "ping" ->
          let* id = required_string "id" j in
          Ok (Ping { id })
      | Some op -> Error (Printf.sprintf "unknown op %S" op)
      | None -> Result.map (fun r -> Verify r) (decode_request j))
  | _ -> Error "request must be a JSON object"

let decode_incoming_line line =
  match Json.of_string line with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> decode_incoming j

let request_id_of_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok j -> Option.bind (Json.member "id" j) Json.string_value

(* ------------------------------------------------------------------ *)
(* Responses *)

type verdict =
  | Holds of { detail : string }
  | Violated of { steps : int; trace : string list list }
  | Unknown of { detail : string; reason : string option }

type response =
  | Answer of {
      id : string;
      verdict : verdict;
      engine : string;
      cache_hit : bool;
      coalesced : bool;
      wall_ms : float;
      queue_ms : float;
      reused_session : bool;
      warm_depth : int;
    }
  | Degraded of {
      id : string;
      code : string;  (** why no full answer: deadline_exceeded | engine_failed *)
      clean_depth : int;  (** no counterexample up to this depth *)
      engine : string;
      wall_ms : float;
      queue_ms : float;
      reused_session : bool;
      warm_depth : int;
    }
  | Overloaded of { id : string }
  | Cancelled of { id : string; reason : string }
  | Error of { id : string option; code : string; reason : string }
  | Pong of { id : string }

(* The machine-readable rejection codes. Overloaded and Cancelled carry
   theirs implicitly; Error picks between bad_request and
   engine_failed; Degraded between engine_failed and
   deadline_exceeded. *)
let code_overloaded = "overloaded"
let code_draining = "draining"
let code_bad_request = "bad_request"
let code_engine_failed = "engine_failed"
let code_deadline_exceeded = "deadline_exceeded"

let response_id = function
  | Answer { id; _ }
  | Degraded { id; _ }
  | Overloaded { id }
  | Cancelled { id; _ }
  | Pong { id } ->
      Some id
  | Error { id; _ } -> id

let json_of_verdict = function
  | Holds { detail } ->
      [ ("verdict", Json.String "holds"); ("detail", Json.String detail) ]
  | Unknown { detail; reason } ->
      [ ("verdict", Json.String "unknown"); ("detail", Json.String detail) ]
      @ (match reason with
        | Some r -> [ ("reason", Json.String r) ]
        | None -> [])
  | Violated { steps; trace } ->
      [
        ("verdict", Json.String "violated");
        ("trace_steps", Json.Int steps);
        ( "trace",
          Json.List
            (List.map
               (fun state ->
                 Json.List (List.map (fun v -> Json.String v) state))
               trace) );
      ]

let encode_response = function
  | Answer
      {
        id;
        verdict;
        engine;
        cache_hit;
        coalesced;
        wall_ms;
        queue_ms;
        reused_session;
        warm_depth;
      } ->
      Json.Obj
        ([ ("id", Json.String id); ("status", Json.String "ok") ]
        @ json_of_verdict verdict
        @ [
            ("engine", Json.String engine);
            ("cache_hit", Json.Bool cache_hit);
            ("coalesced", Json.Bool coalesced);
            ("wall_ms", Json.Float wall_ms);
            ("queue_ms", Json.Float queue_ms);
            ("reused_session", Json.Bool reused_session);
            ("warm_depth", Json.Int warm_depth);
          ])
  | Degraded
      {
        id;
        code;
        clean_depth;
        engine;
        wall_ms;
        queue_ms;
        reused_session;
        warm_depth;
      } ->
      Json.Obj
        [
          ("id", Json.String id);
          ("status", Json.String "degraded");
          ("code", Json.String code);
          ("clean_depth", Json.Int clean_depth);
          ( "detail",
            Json.String
              (Printf.sprintf "no counterexample up to depth %d" clean_depth) );
          ("engine", Json.String engine);
          ("wall_ms", Json.Float wall_ms);
          ("queue_ms", Json.Float queue_ms);
          ("reused_session", Json.Bool reused_session);
          ("warm_depth", Json.Int warm_depth);
        ]
  | Overloaded { id } ->
      Json.Obj
        [
          ("id", Json.String id);
          ("status", Json.String "overloaded");
          ("code", Json.String code_overloaded);
        ]
  | Cancelled { id; reason } ->
      Json.Obj
        [
          ("id", Json.String id);
          ("status", Json.String "cancelled");
          ("code", Json.String code_draining);
          ("reason", Json.String reason);
        ]
  | Error { id; code; reason } ->
      Json.Obj
        ((match id with Some id -> [ ("id", Json.String id) ] | None -> [])
        @ [
            ("status", Json.String "error");
            ("code", Json.String code);
            ("reason", Json.String reason);
          ])
  | Pong { id } ->
      Json.Obj [ ("id", Json.String id); ("status", Json.String "pong") ]

let response_line r = Json.to_string (encode_response r) ^ "\n"

(* [Error] below is shadowed by the response constructor, hence the
   explicit result annotations on the remaining decoders. *)

let number name j : (float, string) result =
  match field name j with
  | Some v -> (
      match (Json.float_value v, Json.int_value v) with
      | Some f, _ -> Ok f
      | None, Some i -> Ok (float_of_int i)
      | None, None ->
          Result.Error (Printf.sprintf "field %S must be a number" name))
  | None -> Result.Error (Printf.sprintf "missing field %S" name)

let required_bool name j : (bool, string) result =
  match Option.bind (field name j) Json.bool_value with
  | Some b -> Ok b
  | None ->
      Result.Error (Printf.sprintf "missing or non-boolean field %S" name)

let decode_verdict j : (verdict, string) result =
  match Option.bind (field "verdict" j) Json.string_value with
  | Some "holds" ->
      let detail =
        Option.value ~default:""
          (Option.bind (field "detail" j) Json.string_value)
      in
      Ok (Holds { detail })
  | Some "unknown" ->
      let detail =
        Option.value ~default:""
          (Option.bind (field "detail" j) Json.string_value)
      in
      let reason = Option.bind (field "reason" j) Json.string_value in
      Ok (Unknown { detail; reason })
  | Some "violated" ->
      let trace =
        match field "trace" j with
        | None -> []
        | Some tr ->
            List.map
              (fun state ->
                List.filter_map Json.string_value (Json.to_list state))
              (Json.to_list tr)
      in
      let steps =
        Option.value ~default:(List.length trace)
          (Option.bind (field "trace_steps" j) Json.int_value)
      in
      Ok (Violated { steps; trace })
  | Some v -> Result.Error (Printf.sprintf "unknown verdict %S" v)
  | None -> Result.Error "missing field \"verdict\""

let decode_response j : (response, string) result =
  match j with
  | Json.Obj _ -> (
      let id = Option.bind (field "id" j) Json.string_value in
      match Option.bind (field "status" j) Json.string_value with
      | Some "ok" ->
          let* id =
            match id with
            | Some id -> Ok id
            | None -> Error "missing field \"id\""
          in
          let* verdict = decode_verdict j in
          let* engine = required_string "engine" j in
          let* cache_hit = required_bool "cache_hit" j in
          let* coalesced = required_bool "coalesced" j in
          let* wall_ms = number "wall_ms" j in
          let* queue_ms = number "queue_ms" j in
          (* Optional for compatibility with pre-session daemons. *)
          let reused_session =
            Option.value ~default:false
              (Option.bind (field "reused_session" j) Json.bool_value)
          in
          let warm_depth =
            Option.value ~default:0
              (Option.bind (field "warm_depth" j) Json.int_value)
          in
          Ok
            (Answer
               {
                 id;
                 verdict;
                 engine;
                 cache_hit;
                 coalesced;
                 wall_ms;
                 queue_ms;
                 reused_session;
                 warm_depth;
               })
      | Some "degraded" ->
          let* id =
            match id with
            | Some id -> Ok id
            | None -> Error "missing field \"id\""
          in
          let* code = required_string "code" j in
          let* clean_depth =
            match Option.bind (field "clean_depth" j) Json.int_value with
            | Some d -> Ok d
            | None -> Error "missing or non-integer field \"clean_depth\""
          in
          let* engine = required_string "engine" j in
          let* wall_ms = number "wall_ms" j in
          let* queue_ms = number "queue_ms" j in
          let reused_session =
            Option.value ~default:false
              (Option.bind (field "reused_session" j) Json.bool_value)
          in
          let warm_depth =
            Option.value ~default:0
              (Option.bind (field "warm_depth" j) Json.int_value)
          in
          Ok
            (Degraded
               {
                 id;
                 code;
                 clean_depth;
                 engine;
                 wall_ms;
                 queue_ms;
                 reused_session;
                 warm_depth;
               })
      | Some "overloaded" ->
          let* id =
            match id with
            | Some id -> Ok id
            | None -> Error "missing field \"id\""
          in
          Ok (Overloaded { id })
      | Some "cancelled" ->
          let* id =
            match id with
            | Some id -> Ok id
            | None -> Error "missing field \"id\""
          in
          let* reason = required_string "reason" j in
          Ok (Cancelled { id; reason })
      | Some "pong" ->
          let* id =
            match id with
            | Some id -> Ok id
            | None -> Error "missing field \"id\""
          in
          Ok (Pong { id })
      | Some "error" ->
          let* reason = required_string "reason" j in
          (* Pre-code daemons sent errors only for unparseable input. *)
          let code =
            Option.value ~default:code_bad_request
              (Option.bind (field "code" j) Json.string_value)
          in
          Ok (Error { id; code; reason })
      | Some s -> Result.Error (Printf.sprintf "unknown status %S" s)
      | None -> Result.Error "missing field \"status\"")
  | _ -> Result.Error "response must be a JSON object"

let decode_response_line line =
  match Json.of_string line with
  | Result.Error e -> Result.Error ("invalid JSON: " ^ e)
  | Ok j -> decode_response j
