(** The daemon's scheduler: a bounded admission queue and a pool of
    worker domains in front of {!Portfolio.race}, with request
    coalescing and per-request deadlines.

    {b Dedup/coalescing.} Every submission is fingerprinted with
    {!Portfolio.Cache.key} over its compiled model and engine list,
    plus its [family] override (so a waiter never inherits another
    submitter's session-routing key). A submission whose fingerprint
    matches a computation that is already queued {e or running} does
    not enqueue anything: it joins the existing computation's waiter
    list and receives the same result when it completes. Identical
    concurrent requests therefore cost one engine run, however many
    clients ask.

    {b Cache.} When a warm {!Portfolio.Cache.t} is attached, it is
    consulted at admission: a conclusive cached verdict answers the
    submission synchronously, without touching the queue. (The workers
    also pass the cache down to {!Portfolio.race}, which stores new
    conclusive verdicts.)

    {b Admission control.} The queue is bounded; a submission that
    finds it full is shed — {!submit} returns [`Shed] and no callback
    fires. Coalescing submissions never shed (they consume no queue
    slot).

    {b Deadlines.} A submission may carry an absolute deadline. The
    computation's effective deadline is the {e latest} over its
    waiters (a waiter without one makes the computation unbounded);
    the worker polls it through the race's [?cancel] hook, so an
    expired computation stops cooperatively.

    {b Warm sessions.} With a {!Sessions.t} pool attached, a request
    for exactly one SAT-backed engine ([sat-bmc] or [sat-induction])
    skips the portfolio and runs on a pooled incremental solver
    session of its family — reusing BDD compilation, CNF unrolling and
    learned clauses from earlier near-miss requests. Verdicts are
    unchanged (see {!Sessions.run}); the outcome carries
    [reused_session]/[warm_depth] attribution and conclusive verdicts
    still land in the shared cache. The session path runs under the
    same [supervisor] retry policy and [faults] hooks as the portfolio
    path (retries restart on a fresh session; the per-attempt watchdog
    does not apply); exhausted retries are answered as a recorded
    failure that the protocol layer turns into [engine_failed].
    Multi-engine races and BDD-backed engines take the cold path as
    before. A computation whose
    deadline has already passed when a worker picks it up is skipped —
    no engine runs. Conclusive verdicts are always delivered, even to
    waiters whose own deadline has meanwhile passed; an inconclusive
    outcome to an expired waiter is flagged [expired] so the protocol
    layer can report [deadline_exceeded].

    {b Drain.} {!drain} stops admission, wakes the workers, and waits
    until every accepted computation has been answered. With [~grace],
    a watchdog raises a force-cancel flag once the grace period
    elapses, so long-running engine runs finish early with an
    inconclusive verdict instead of holding shutdown hostage. *)

type t

val create :
  ?workers:int ->
  ?queue_cap:int ->
  ?cache:Portfolio.Cache.t ->
  ?sessions:Sessions.t ->
  ?obs:Obs.Collector.t ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  unit ->
  t
(** [workers] defaults to [Portfolio.Pool.default_domains ()];
    [queue_cap] (distinct queued computations, running ones excluded)
    defaults to 64. With [obs], the scheduler writes to a ["service"]
    track: [service.queue_depth] / [service.inflight] gauges,
    [service.{submitted,coalesced,shed,cache_hits,runs,expired,
    completed,session_reuses}] counters, and a [service.run] span per
    engine-pool computation. [sessions] attaches a warm solver-session
    pool (see the module doc). [supervisor]/[faults] are forwarded to every
    {!Portfolio.race} the workers run: a request whose engines all
    crash or hang is still answered — with a result flagged by
    {!Portfolio.all_failed} that the protocol layer turns into a
    structured [engine_failed] error.
    @raise Invalid_argument if [workers < 1] or [queue_cap < 1]. *)

type outcome = {
  result : Portfolio.result;
  coalesced : bool;  (** this waiter joined an existing computation *)
  queue_ms : float;  (** submission to run start (0 on a cache hit) *)
  expired : bool;
      (** the waiter's deadline passed and the verdict is inconclusive
          — report [deadline_exceeded] *)
  reused_session : bool;
      (** the computation ran on a pooled warm solver session *)
  warm_depth : int;
      (** the session's unrolling depth at checkout (0 unless
          [reused_session]) *)
  clean_depth : int;
      (** largest depth the request's warm session certified
          counterexample-free ([-1] when none, or when the request did
          not run session-backed) — an inconclusive outcome with
          [clean_depth >= 0] degrades to a content-bearing
          [status:"degraded"] answer instead of a bare error *)
}

val submit :
  t ->
  ?deadline:float ->
  ?family:string ->
  engines:Tta_model.Engine.id list ->
  max_depth:int ->
  callback:(outcome -> unit) ->
  Tta_model.Configs.t ->
  [ `Queued | `Coalesced | `Cache_hit | `Shed | `Draining ]
(** Submit one verification request. [deadline] is absolute
    ([Unix.gettimeofday] time). [family] selects the session pool's
    bucket for this request instead of the computed family fingerprint
    (no effect on routing without an attached pool, or on the
    portfolio path) and partitions coalescing: submissions with
    different [family] values never share a computation. The pool
    validates the entry's fingerprint at checkout, so a wrong override
    costs a cold start, never a wrong verdict. On [`Cache_hit] the callback has
    already run (synchronously); on [`Queued]/[`Coalesced] it will run
    exactly once, from a worker domain; on [`Shed]/[`Draining] it
    never runs — answer the client directly.
    @raise Invalid_argument on an empty engine list. *)

val drain : ?grace:float -> t -> unit
(** Graceful shutdown: refuse new submissions, run the queue down
    (force-cancelling after [grace] seconds, if given) and join the
    workers. Every callback has fired when [drain] returns. Idempotent
    in effect, but must only be called once. *)

type stats = {
  submitted : int;  (** admitted (queued + coalesced + cache hits) *)
  completed : int;  (** callbacks delivered *)
  coalesced : int;
  shed : int;
  cache_hits : int;  (** admission-time cache answers *)
  runs : int;  (** computations actually handed to the engine pool *)
  expired : int;  (** waiters answered inconclusively past deadline *)
  session_reuses : int;
      (** computations served by a warm pooled solver session *)
}

val stats : t -> stats

val queue_depth : t -> int
val inflight : t -> int
(** Computations currently being executed by workers. *)
