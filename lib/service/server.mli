(** The verification daemon's network front end.

    A single-threaded [Unix.select] loop (stdlib [Unix] only — no
    external async runtime) accepts connections on a Unix-domain or
    TCP socket and reads newline-delimited {!Protocol} requests;
    verification runs on the {!Scheduler}'s worker domains, whose
    completion callbacks write the response line directly to the
    client socket under a per-connection mutex. Responses therefore
    stream back as computations finish, not in request order.

    {b Shutdown.} {!stop} (wired to SIGTERM and SIGINT by {!serve})
    triggers a graceful drain via a self-pipe: the listener closes, no
    further input is read (buffered but unsubmitted bytes are
    discarded), every accepted computation is answered
    (force-cancelled after the grace period), and the loop exits.
    SIGPIPE is ignored for the process — a client that hangs up
    early costs a failed write, not the daemon. *)

type addr =
  | Unix_socket of string  (** path; unlinked and rebound on start *)
  | Tcp of string * int
      (** bind address and port; port [0] asks the kernel for an
          ephemeral port — read the result back with {!bound_addr} *)

val addr_of_string : string -> (addr, string) result
(** ["HOST:PORT"] becomes {!Tcp} (port [0] allowed); anything else is
    a {!Unix_socket} path. *)

val addr_to_string : addr -> string

type t

val start :
  ?workers:int ->
  ?queue_cap:int ->
  ?cache:Portfolio.Cache.t ->
  ?sessions:Sessions.t ->
  ?obs:Obs.Collector.t ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  ?grace:float ->
  addr ->
  t
(** Bind, listen, and run the accept loop on its own domain; returns
    once the socket is ready to connect to. [grace] (default 5 s) is
    the drain watchdog passed to {!Scheduler.drain}. [faults] also arms
    the [Sock_send]/[Sock_recv] hook points on every connection: an
    injected socket fault aborts that one connection (the client sees
    EOF and retries) without touching the select loop. [sessions]
    attaches a warm solver-session pool — single-SAT-engine requests
    then run incrementally and answers carry
    [reused_session]/[warm_depth]. The remaining options go to
    {!Scheduler.create}.
    @raise Unix.Unix_error if the address cannot be bound. *)

val stop : t -> unit
(** Request a graceful drain (idempotent; safe from a signal handler
    or any domain). Returns immediately — {!wait} for completion. *)

val wait : t -> unit
(** Block until the loop has exited and the scheduler has drained. *)

val scheduler : t -> Scheduler.t

val bound_addr : t -> addr
(** The address the listener actually bound: equal to the requested
    address except that a TCP port [0] is resolved to the
    kernel-assigned ephemeral port. This is what a readiness
    announcement should print. *)

val serve :
  ?workers:int ->
  ?queue_cap:int ->
  ?cache:Portfolio.Cache.t ->
  ?sessions:Sessions.t ->
  ?obs:Obs.Collector.t ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  ?grace:float ->
  ?on_ready:(t -> unit) ->
  addr ->
  unit
(** The daemon main: {!start}, install SIGTERM/SIGINT handlers that
    {!stop}, call [on_ready] with the running server (so it can
    announce {!bound_addr}), and {!wait}. Returns (normally) after a
    signal-triggered drain. *)
