(* Bounded-queue scheduler with coalescing and deadlines — see the
   interface for the design. *)

open Tta_model

type waiter = {
  cb : outcome -> unit;
  wdeadline : float;  (** absolute; [infinity] = none *)
  submitted_at : float;
  joined : bool;  (** coalesced onto an existing computation *)
}

and outcome = {
  result : Portfolio.result;
  coalesced : bool;
  queue_ms : float;
  expired : bool;
  reused_session : bool;
  warm_depth : int;
  clean_depth : int;
      (** largest depth certified counterexample-free by the request's
          warm session ([-1] when none) — what a degraded answer
          reports when the verdict is inconclusive *)
}

type comp = {
  ckey : string;
  cfg : Configs.t;
  engines : Engine.id list;
  max_depth : int;
  family : string option;
  mutable waiters : waiter list;  (** newest first; delivered reversed *)
  deadline : float Atomic.t;
      (** max over the waiters' deadlines ([infinity] dominates);
          written under the scheduler lock, read lock-free by the
          run's cancel hook *)
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : comp Queue.t;
  queue_cap : int;
  inflight : (string, comp) Hashtbl.t;
      (** every accepted computation, queued or running — the
          coalescing window spans the whole run *)
  models : (Configs.t, Symkit.Model.t) Hashtbl.t;
  cache : Portfolio.Cache.t option;
  sessions : Sessions.t option;
  supervisor : Resilience.Supervisor.policy;
  faults : Resilience.Faults.t;
  mutable draining : bool;
  mutable running : int;
  force : bool Atomic.t;  (** drain watchdog: cancel in-flight runs *)
  stopped : bool Atomic.t;
  mutable workers : unit Domain.t array;
  (* stats (under [lock]) *)
  mutable s_submitted : int;
  mutable s_completed : int;
  mutable s_coalesced : int;
  mutable s_shed : int;
  mutable s_cache_hits : int;
  mutable s_runs : int;
  mutable s_expired : int;
  mutable s_session_reuses : int;
  (* observability ("service" track) *)
  track : Obs.t;
  c_submitted : Obs.cell;
  c_completed : Obs.cell;
  c_coalesced : Obs.cell;
  c_shed : Obs.cell;
  c_cache_hits : Obs.cell;
  c_runs : Obs.cell;
  c_expired : Obs.cell;
  c_session_reuses : Obs.cell;
  g_queue : Obs.cell;
  g_inflight : Obs.cell;
}

let now () = Unix.gettimeofday ()

let model_of t cfg =
  match Hashtbl.find_opt t.models cfg with
  | Some m -> m
  | None ->
      let m = Build.model cfg in
      Hashtbl.add t.models cfg m;
      m

(* The family override is part of the coalescing identity: a waiter
   must never inherit another submitter's session-routing key (its
   attribution — and session bucket — would come from the other
   request's family). *)
let ckey_of ~model ~engines ~max_depth ~family =
  let base =
    String.concat "+"
      (List.map
         (fun e -> Portfolio.Cache.key ~model ~engine:e ~max_depth)
         engines)
  in
  match family with None -> base | Some f -> base ^ "@" ^ f

let conclusive_cached cache ~model ~engines ~max_depth =
  match cache with
  | None -> None
  | Some c ->
      List.find_map
        (fun e ->
          match Portfolio.Cache.lookup c ~model ~engine:e ~max_depth with
          | Some v when Portfolio.conclusive v -> Some (e, v)
          | _ -> None)
        engines

(* ------------------------------------------------------------------ *)
(* Workers *)

let no_attr = { Sessions.reused = false; warm_depth = 0; clean_depth = -1 }

let deliver t comp ~(result : Portfolio.result) ?(attr = no_attr) ~ran
    ~started_at () =
  Mutex.lock t.lock;
  Hashtbl.remove t.inflight comp.ckey;
  let waiters = List.rev comp.waiters in
  comp.waiters <- [];
  if ran then t.s_runs <- t.s_runs + 1;
  t.s_completed <- t.s_completed + List.length waiters;
  Mutex.unlock t.lock;
  if ran then Obs.tick t.c_runs;
  Obs.add t.c_completed (List.length waiters);
  let conclusive = Portfolio.conclusive result.Portfolio.verdict in
  let at = now () in
  let n_expired = ref 0 in
  List.iter
    (fun w ->
      let expired = (not conclusive) && w.wdeadline < at in
      if expired then incr n_expired;
      let queue_ms = Float.max 0. ((started_at -. w.submitted_at) *. 1000.) in
      w.cb
        {
          result;
          coalesced = w.joined;
          queue_ms;
          expired;
          reused_session = attr.Sessions.reused;
          warm_depth = attr.Sessions.warm_depth;
          clean_depth = attr.Sessions.clean_depth;
        })
    waiters;
  if !n_expired > 0 then begin
    Mutex.lock t.lock;
    t.s_expired <- t.s_expired + !n_expired;
    Mutex.unlock t.lock;
    Obs.add t.c_expired !n_expired
  end

let skip_result comp detail =
  {
    Portfolio.config = comp.cfg;
    engine = List.hd comp.engines;
    verdict = Engine.Unknown { detail };
    wall_s = 0.;
    cache_hit = false;
    runs = [];
    failures = [];
  }

(* A request is session-eligible when a pool is attached and it asks
   for exactly one SAT-backed engine: the warm-session fast path is an
   alternative to the engine race, not a racer inside it. *)
let session_engine t comp =
  match (t.sessions, comp.engines) with
  | Some pool, [ ((Engine.Sat_bmc | Engine.Sat_induction) as e) ] ->
      Some (pool, e)
  | _ -> None

(* Run the request on a warm session of its family instead of racing a
   cold portfolio, under the same supervision policy and fault hooks
   as the portfolio path. Conclusive verdicts still feed the shared
   cache, so session-path answers are visible to later cache
   lookups. *)
let run_on_session t comp ~pool ~engine ~cancel =
  let t0 = now () in
  match
    Sessions.run pool ~engine ~cancel ~supervisor:t.supervisor
      ~faults:t.faults ?family:comp.family ~max_depth:comp.max_depth comp.cfg
  with
  | r, attr ->
      let wall_s = now () -. t0 in
      let verdict = r.Engine.verdict in
      (match t.cache with
      | Some c when Portfolio.conclusive verdict ->
          let model =
            Mutex.lock t.lock;
            let m = model_of t comp.cfg in
            Mutex.unlock t.lock;
            m
          in
          Portfolio.Cache.store c ~model ~engine ~max_depth:comp.max_depth
            verdict
      | _ -> ());
      if attr.Sessions.reused then begin
        Mutex.lock t.lock;
        t.s_session_reuses <- t.s_session_reuses + 1;
        Mutex.unlock t.lock;
        Obs.tick t.c_session_reuses
      end;
      ( {
          Portfolio.config = comp.cfg;
          engine;
          verdict;
          wall_s;
          cache_hit = false;
          runs = [ (engine, verdict, wall_s) ];
          failures = [];
        },
        attr )
  | exception e ->
      (* Retries exhausted (or a non-engine bug): parity with the
         portfolio path — a recorded failure the protocol layer turns
         into [engine_failed], not an exception unwinding the worker.
         [Engine_failed] additionally carries the best clean depth the
         failed attempts certified, so the answer can degrade with
         content instead of erroring empty-handed. *)
      let msg, clean_depth =
        match e with
        | Sessions.Engine_failed { message; clean_depth } ->
            (message, clean_depth)
        | e -> (Printexc.to_string e, -1)
      in
      ( {
          Portfolio.config = comp.cfg;
          engine;
          verdict = Engine.Unknown { detail = "engine failed: " ^ msg };
          wall_s = now () -. t0;
          cache_hit = false;
          runs = [];
          failures = [ (engine, msg) ];
        },
        { no_attr with Sessions.clean_depth } )

let execute t comp =
  let started_at = now () in
  let skip =
    if Atomic.get t.force then Some "cancelled by shutdown drain"
    else if Atomic.get comp.deadline < started_at then
      Some "deadline expired before the run started"
    else None
  in
  let result, attr, ran =
    match skip with
    | Some detail ->
        (* Never ran — but an idle warm session of the family may
           already have certified depths worth reporting. *)
        let clean_depth =
          match session_engine t comp with
          | Some (pool, _) ->
              Sessions.peek_clean_depth pool ?family:comp.family comp.cfg
          | None -> -1
        in
        (skip_result comp detail, { no_attr with Sessions.clean_depth }, false)
    | None ->
        let cancel () =
          Atomic.get t.force || now () > Atomic.get comp.deadline
        in
        let span =
          Obs.start t.track
            ~args:[ ("config", Configs.name comp.cfg) ]
            "service.run"
        in
        let r, attr =
          match session_engine t comp with
          | Some (pool, engine) -> run_on_session t comp ~pool ~engine ~cancel
          | None ->
              ( Portfolio.race ~cancel ?cache:t.cache ~engines:comp.engines
                  ~max_depth:comp.max_depth ~supervisor:t.supervisor
                  ~faults:t.faults comp.cfg,
                no_attr )
        in
        Obs.stop span;
        (r, attr, true)
  in
  deliver t comp ~result ~attr ~ran ~started_at ()

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.draining do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
    (* draining and nothing left: done *)
  else begin
    let comp = Queue.pop t.queue in
    t.running <- t.running + 1;
    Obs.record t.g_inflight t.running;
    Mutex.unlock t.lock;
    (match execute t comp with
    | () -> ()
    | exception e ->
        (* An engine exception must not kill the worker; answer the
           waiters inconclusively instead of leaving them hanging. *)
        deliver t comp
          ~result:(skip_result comp ("engine exception: " ^ Printexc.to_string e))
          ~ran:true ~started_at:(now ()) ());
    Mutex.lock t.lock;
    t.running <- t.running - 1;
    Mutex.unlock t.lock;
    worker_loop t
  end

(* ------------------------------------------------------------------ *)
(* Construction, submission, drain *)

let create ?workers ?(queue_cap = 64) ?cache ?sessions ?obs
    ?(supervisor = Resilience.Supervisor.default)
    ?(faults = Resilience.Faults.disabled) () =
  let workers_n =
    match workers with
    | None -> Portfolio.Pool.default_domains ()
    | Some n when n < 1 -> invalid_arg "Scheduler.create: workers < 1"
    | Some n -> n
  in
  if queue_cap < 1 then invalid_arg "Scheduler.create: queue_cap < 1";
  let track =
    match obs with
    | None -> Obs.disabled
    | Some col -> Obs.Collector.track col "service"
  in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      queue_cap;
      inflight = Hashtbl.create 64;
      models = Hashtbl.create 16;
      cache;
      sessions;
      supervisor;
      faults;
      draining = false;
      running = 0;
      force = Atomic.make false;
      stopped = Atomic.make false;
      workers = [||];
      s_submitted = 0;
      s_completed = 0;
      s_coalesced = 0;
      s_shed = 0;
      s_cache_hits = 0;
      s_runs = 0;
      s_expired = 0;
      s_session_reuses = 0;
      track;
      c_submitted = Obs.counter track "service.submitted";
      c_completed = Obs.counter track "service.completed";
      c_coalesced = Obs.counter track "service.coalesced";
      c_shed = Obs.counter track "service.shed";
      c_cache_hits = Obs.counter track "service.cache_hits";
      c_runs = Obs.counter track "service.runs";
      c_expired = Obs.counter track "service.expired";
      c_session_reuses = Obs.counter track "service.session_reuses";
      g_queue = Obs.gauge track "service.queue_depth";
      g_inflight = Obs.gauge track "service.inflight";
    }
  in
  t.workers <-
    Array.init workers_n (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t ?deadline ?family ~engines ~max_depth ~callback cfg =
  if engines = [] then invalid_arg "Scheduler.submit: empty engine list";
  let dl = match deadline with None -> infinity | Some d -> d in
  let at = now () in
  Mutex.lock t.lock;
  if t.draining then begin
    Mutex.unlock t.lock;
    `Draining
  end
  else begin
    let model = model_of t cfg in
    match conclusive_cached t.cache ~model ~engines ~max_depth with
    | Some (e, v) ->
        t.s_submitted <- t.s_submitted + 1;
        t.s_cache_hits <- t.s_cache_hits + 1;
        t.s_completed <- t.s_completed + 1;
        Mutex.unlock t.lock;
        Obs.tick t.c_submitted;
        Obs.tick t.c_cache_hits;
        Obs.tick t.c_completed;
        callback
          {
            result =
              {
                Portfolio.config = cfg;
                engine = e;
                verdict = v;
                wall_s = 0.;
                cache_hit = true;
                runs = [];
                failures = [];
              };
            coalesced = false;
            queue_ms = 0.;
            expired = false;
            reused_session = false;
            warm_depth = 0;
            clean_depth = -1;
          };
        `Cache_hit
    | None -> (
        let ckey = ckey_of ~model ~engines ~max_depth ~family in
        let waiter ~joined =
          { cb = callback; wdeadline = dl; submitted_at = at; joined }
        in
        match Hashtbl.find_opt t.inflight ckey with
        | Some comp ->
            comp.waiters <- waiter ~joined:true :: comp.waiters;
            Atomic.set comp.deadline (Float.max (Atomic.get comp.deadline) dl);
            t.s_submitted <- t.s_submitted + 1;
            t.s_coalesced <- t.s_coalesced + 1;
            Mutex.unlock t.lock;
            Obs.tick t.c_submitted;
            Obs.tick t.c_coalesced;
            `Coalesced
        | None ->
            if Queue.length t.queue >= t.queue_cap then begin
              t.s_shed <- t.s_shed + 1;
              Mutex.unlock t.lock;
              Obs.tick t.c_shed;
              `Shed
            end
            else begin
              let comp =
                {
                  ckey;
                  cfg;
                  engines;
                  max_depth;
                  family;
                  waiters = [ waiter ~joined:false ];
                  deadline = Atomic.make dl;
                }
              in
              Queue.push comp t.queue;
              Hashtbl.add t.inflight ckey comp;
              t.s_submitted <- t.s_submitted + 1;
              let depth = Queue.length t.queue in
              Condition.signal t.nonempty;
              Mutex.unlock t.lock;
              Obs.tick t.c_submitted;
              Obs.record t.g_queue depth;
              `Queued
            end)
  end

let drain ?grace t =
  Mutex.lock t.lock;
  t.draining <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  let watchdog =
    Option.map
      (fun g ->
        Domain.spawn (fun () ->
            let stop_at = now () +. g in
            while (not (Atomic.get t.stopped)) && now () < stop_at do
              Unix.sleepf 0.01
            done;
            Atomic.set t.force true))
      grace
  in
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  Atomic.set t.stopped true;
  Option.iter Domain.join watchdog

type stats = {
  submitted : int;
  completed : int;
  coalesced : int;
  shed : int;
  cache_hits : int;
  runs : int;
  expired : int;
  session_reuses : int;
}

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      submitted = t.s_submitted;
      completed = t.s_completed;
      coalesced = t.s_coalesced;
      shed = t.s_shed;
      cache_hits = t.s_cache_hits;
      runs = t.s_runs;
      expired = t.s_expired;
      session_reuses = t.s_session_reuses;
    }
  in
  Mutex.unlock t.lock;
  s

let queue_depth t =
  Mutex.lock t.lock;
  let d = Queue.length t.queue in
  Mutex.unlock t.lock;
  d

let inflight t =
  Mutex.lock t.lock;
  let r = t.running in
  Mutex.unlock t.lock;
  r
