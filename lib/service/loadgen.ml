(* Open-/closed-loop load generation — see the interface. *)

type mode = Open_loop of float | Closed_loop of int

type report = {
  requests : int;
  ok : int;
  degraded : int;
  holds : int;
  violated : int;
  unknown : int;
  deadline_exceeded : int;
  overloaded : int;
  cancelled : int;
  protocol_errors : int;
  retries : int;
  conn_retries : int;
  engine_retries : int;
  engine_failed : int;
  cache_hits : int;
  coalesced : int;
  session_reuses : int;
  hedged : int;
  breaker_opens : int;
  wall_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  per_worker : (string * int) list;
  imbalance : float;
}

let connect addr =
  match (addr : Server.addr) with
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd

let rec write_all fd s off len =
  if len > 0 then begin
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
  end

(* The daemon may be mid-restart, the backlog briefly full, or a chaos
   fault may have aborted our previous connection — retry the connect a
   few times with capped exponential backoff before giving up. *)
let connect_backoff ?(attempts = 6) addr =
  let rec go k =
    match connect addr with
    | fd -> fd
    | exception Unix.Unix_error _ when k < attempts - 1 ->
        Unix.sleepf (Float.min 0.5 (0.05 *. (2. ** float_of_int k)));
        go (k + 1)
  in
  go 0

(* A blocking line reader over a raw fd (one per connection, single
   consumer). Returns [None] on EOF with an empty buffer. *)
type line_reader = { fd : Unix.file_descr; rbuf : Buffer.t; scratch : Bytes.t }

let line_reader fd = { fd; rbuf = Buffer.create 512; scratch = Bytes.create 8192 }

let rec read_line_opt r =
  let s = Buffer.contents r.rbuf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear r.rbuf;
      Buffer.add_substring r.rbuf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  | None -> (
      match Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
      | 0 -> if s = "" then None else (Buffer.clear r.rbuf; Some s)
      | n ->
          Buffer.add_subbytes r.rbuf r.scratch 0 n;
          read_line_opt r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line_opt r
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          None)

(* ------------------------------------------------------------------ *)
(* The request stream *)

let sample rng l = List.nth l (Random.State.int rng (List.length l))

(* [nodes_choices]/[depths] widen the sampled stream across cluster
   shards: distinct (config, nodes) pairs give distinct model
   fingerprints — distinct consistent-hash routing keys — and distinct
   depths give distinct computations within a shard, so the stream can
   saturate many workers instead of coalescing onto a handful of
   duplicate requests.

   The default stream samples iid (duplicates on purpose — that is
   what exercises dedup). [~exhaustive:true] instead enumerates the
   full configs x engines x nodes x depths cross product in a seeded
   shuffle, cycling if [requests] exceeds it: no duplicates (up to one
   cycle), so the work each shard owns is a deterministic function of
   the workload alone, not of coalescing races. Scaling benches want
   this — run-to-run variance from inconclusive-verdict re-runs would
   otherwise swamp the curve. *)
let stream ~seed ~exhaustive ~nodes_choices ~depths ~deadline_ms ~configs
    ~engines ~requests =
  let rng = Random.State.make [| seed |] in
  let pick =
    if not exhaustive then fun _ ->
      let config = sample rng configs in
      let engine = sample rng engines in
      let nodes = sample rng nodes_choices in
      let depth = sample rng depths in
      (config, engine, nodes, depth)
    else begin
      let combos =
        List.concat_map
          (fun config ->
            List.concat_map
              (fun engine ->
                List.concat_map
                  (fun nodes ->
                    List.map (fun depth -> (config, engine, nodes, depth)) depths)
                  nodes_choices)
              engines)
          configs
        |> Array.of_list
      in
      let n = Array.length combos in
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = combos.(i) in
        combos.(i) <- combos.(j);
        combos.(j) <- t
      done;
      fun i -> combos.(i mod n)
    end
  in
  List.init requests (fun i ->
      let config, engine, nodes, depth = pick i in
      ( Printf.sprintf "r%d" i,
        Json.to_string
          (Protocol.request
             ~id:(Printf.sprintf "r%d" i)
             ~config ~nodes ~engine ~depth ?deadline_ms ())
        ^ "\n" ))

(* ------------------------------------------------------------------ *)
(* Shared accounting *)

type acc = {
  lock : Mutex.t;
  mutable ok : int;
  mutable degraded : int;
  mutable holds : int;
  mutable violated : int;
  mutable unknown : int;
  mutable deadline_exceeded : int;
  mutable overloaded : int;
  mutable cancelled : int;
  mutable protocol_errors : int;
  mutable conn_retries : int;
  mutable engine_retries : int;
  mutable engine_failed : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable session_reuses : int;
  mutable hedged : int;
  mutable latencies_ms : float list;  (** answered requests only *)
  mutable last_response_at : float;
  workers : (string, int) Hashtbl.t;
      (** responses per serving worker, from the router's [worker]
          response annotation; empty against a plain daemon *)
}

let acc () =
  {
    lock = Mutex.create ();
    ok = 0;
    degraded = 0;
    holds = 0;
    violated = 0;
    unknown = 0;
    deadline_exceeded = 0;
    overloaded = 0;
    cancelled = 0;
    protocol_errors = 0;
    conn_retries = 0;
    engine_retries = 0;
    engine_failed = 0;
    cache_hits = 0;
    coalesced = 0;
    session_reuses = 0;
    hedged = 0;
    latencies_ms = [];
    last_response_at = 0.;
    workers = Hashtbl.create 8;
  }

(* The two retry currencies, reported separately: a transport retry
   (lost/garbled connection — e.g. a drop-injected link fault) tells a
   different story from re-asking after a structured [engine_failed]
   answer. *)
let count_conn_retry acc n =
  Mutex.lock acc.lock;
  acc.conn_retries <- acc.conn_retries + n;
  Mutex.unlock acc.lock

let count_engine_retry acc n =
  Mutex.lock acc.lock;
  acc.engine_retries <- acc.engine_retries + n;
  Mutex.unlock acc.lock

let count_engine_failed acc =
  Mutex.lock acc.lock;
  acc.engine_failed <- acc.engine_failed + 1;
  Mutex.unlock acc.lock

let count_protocol_errors acc n =
  Mutex.lock acc.lock;
  acc.protocol_errors <- acc.protocol_errors + n;
  Mutex.unlock acc.lock

let count_worker acc line =
  (* The cluster router annotates forwarded responses with the serving
     worker's name (and ["hedged":true] when a duplicate leg raced for
     it); a plain daemon's responses have no such fields. *)
  match Json.of_string line with
  | Error _ -> ()
  | Ok j ->
      (match Option.bind (Json.member "worker" j) Json.string_value with
      | None -> ()
      | Some w ->
          Hashtbl.replace acc.workers w
            (1 + Option.value ~default:0 (Hashtbl.find_opt acc.workers w)));
      if Option.bind (Json.member "hedged" j) Json.bool_value = Some true then
        acc.hedged <- acc.hedged + 1

let record acc ~sent_at line =
  let at = Unix.gettimeofday () in
  Mutex.lock acc.lock;
  acc.last_response_at <- Float.max acc.last_response_at at;
  (match Protocol.decode_response_line line with
  | Error _ -> acc.protocol_errors <- acc.protocol_errors + 1
  | Ok (Protocol.Error _) -> acc.protocol_errors <- acc.protocol_errors + 1
  | Ok (Protocol.Pong _) -> ()
  | Ok (Protocol.Overloaded _) -> acc.overloaded <- acc.overloaded + 1
  | Ok (Protocol.Cancelled _) -> acc.cancelled <- acc.cancelled + 1
  | Ok (Protocol.Degraded { reused_session; _ }) ->
      (* A partial answer with content: counted apart from [ok] but
         very much answered — it gets a latency sample and worker
         attribution like any other answer. *)
      count_worker acc line;
      acc.degraded <- acc.degraded + 1;
      (match sent_at with
      | Some t0 -> acc.latencies_ms <- ((at -. t0) *. 1000.) :: acc.latencies_ms
      | None -> ());
      if reused_session then acc.session_reuses <- acc.session_reuses + 1
  | Ok (Protocol.Answer { cache_hit; coalesced; reused_session; verdict; _ })
    ->
      count_worker acc line;
      acc.ok <- acc.ok + 1;
      (match sent_at with
      | Some t0 -> acc.latencies_ms <- ((at -. t0) *. 1000.) :: acc.latencies_ms
      | None -> ());
      if cache_hit then acc.cache_hits <- acc.cache_hits + 1;
      if coalesced then acc.coalesced <- acc.coalesced + 1;
      if reused_session then acc.session_reuses <- acc.session_reuses + 1;
      (match verdict with
      | Protocol.Holds _ -> acc.holds <- acc.holds + 1
      | Protocol.Violated _ -> acc.violated <- acc.violated + 1
      | Protocol.Unknown { reason; _ } ->
          acc.unknown <- acc.unknown + 1;
          if reason = Some "deadline_exceeded" then
            acc.deadline_exceeded <- acc.deadline_exceeded + 1));
  Mutex.unlock acc.lock

(* ------------------------------------------------------------------ *)
(* The two loops *)

(* Per-request outcome of one attempt over the worker's connection.
   [`Conn_lost] covers connect/write failures and EOF before a
   response — the connection is dead, reconnect and resend.
   [`Engine_failed]/[`Garbled] arrive on a live, in-sync connection
   (one response consumed per request sent), so a retry just resends. *)
let attempt_once ~get_conn ~drop_conn ~id line =
  match get_conn () with
  | exception Unix.Unix_error _ -> `Conn_lost
  | fd, reader -> (
      match write_all fd line 0 (String.length line) with
      | exception Unix.Unix_error _ ->
          drop_conn ();
          `Conn_lost
      | () -> (
          match read_line_opt reader with
          | None ->
              drop_conn ();
              `Conn_lost
          | Some resp -> (
              match Protocol.decode_response_line resp with
              | Error _ -> `Garbled
              | Ok (Protocol.Error { code; _ })
                when code = Protocol.code_engine_failed ->
                  `Engine_failed resp
              | Ok r ->
                  if Protocol.response_id r = Some id then `Answered resp
                  else `Garbled)))

let run_closed ~concurrency ~retry_budget ~reqs addr acc =
  let next = Atomic.make 0 in
  let reqs = Array.of_list reqs in
  let worker () =
    let conn = ref None in
    let get_conn () =
      match !conn with
      | Some c -> c
      | None ->
          let fd = connect_backoff addr in
          let c = (fd, line_reader fd) in
          conn := Some c;
          c
    in
    let drop_conn () =
      (match !conn with
      | Some (fd, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      conn := None
    in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length reqs then begin
        let id, line = reqs.(i) in
        let t0 = Unix.gettimeofday () in
        let rec attempt budget =
          match attempt_once ~get_conn ~drop_conn ~id line with
          | `Answered resp -> record acc ~sent_at:(Some t0) resp
          | `Engine_failed _ when budget > 0 ->
              count_engine_failed acc;
              count_engine_retry acc 1;
              attempt (budget - 1)
          | `Engine_failed resp ->
              count_engine_failed acc;
              record acc ~sent_at:None resp
          | (`Conn_lost | `Garbled) when budget > 0 ->
              count_conn_retry acc 1;
              attempt (budget - 1)
          | `Conn_lost | `Garbled -> count_protocol_errors acc 1
        in
        attempt retry_budget;
        go ()
      end
    in
    go ();
    drop_conn ()
  in
  let domains =
    List.init (max 1 concurrency) (fun _ -> Domain.spawn worker)
  in
  List.iter Domain.join domains

(* Open-loop runs proceed in rounds: pace the pending requests onto
   one connection at [rate], read until every one is answered or the
   connection dies, then — with retry budget left — reconnect and
   resend whatever went unanswered (plus any [engine_failed]
   responses, which are retryable: the daemon's supervisor may have
   hit its cap on a transient fault). A reply the loadgen cannot
   attribute to a request (undecodable or id-less) cannot be resent
   and counts as a protocol error immediately. *)
let run_open ~rate ~retry_budget ~reqs addr acc =
  let rec round pending budget =
    match connect_backoff addr with
    | exception Unix.Unix_error _ ->
        count_protocol_errors acc (List.length pending)
    | fd ->
        let sent = Hashtbl.create (List.length pending) in
        let sent_lock = Mutex.create () in
        let t_start = Unix.gettimeofday () in
        let writer =
          Domain.spawn (fun () ->
              let rec send i = function
                | [] -> ()
                | (id, line) :: rest -> (
                    let due = t_start +. (float_of_int i /. rate) in
                    let dt = due -. Unix.gettimeofday () in
                    if dt > 0. then Unix.sleepf dt;
                    Mutex.lock sent_lock;
                    Hashtbl.replace sent id (Unix.gettimeofday ());
                    Mutex.unlock sent_lock;
                    match write_all fd line 0 (String.length line) with
                    | () -> send (i + 1) rest
                    | exception Unix.Unix_error _ ->
                        (* Connection dead: the reader will hit EOF; the
                           unsent tail is picked up as unanswered. *)
                        ())
              in
              send 0 pending)
        in
        let reader = line_reader fd in
        let expected = List.length pending in
        let answered = Hashtbl.create expected in
        let failed = Hashtbl.create 4 in
        let rec read_responses got =
          if got < expected then
            match read_line_opt reader with
            | None -> ()
            | Some line ->
                (match Protocol.decode_response_line line with
                | Ok (Protocol.Error { id = Some id; code; _ })
                  when code = Protocol.code_engine_failed ->
                    count_engine_failed acc;
                    Hashtbl.replace answered id ();
                    Hashtbl.replace failed id line
                | Ok r -> (
                    match Protocol.response_id r with
                    | Some id ->
                        Hashtbl.replace answered id ();
                        Mutex.lock sent_lock;
                        let t0 = Hashtbl.find_opt sent id in
                        Mutex.unlock sent_lock;
                        record acc ~sent_at:t0 line
                    | None -> record acc ~sent_at:None line)
                | Error _ -> record acc ~sent_at:None line);
                read_responses (got + 1)
        in
        read_responses 0;
        Domain.join writer;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let retryable =
          List.filter
            (fun (id, _) ->
              (not (Hashtbl.mem answered id)) || Hashtbl.mem failed id)
            pending
        in
        if retryable = [] then ()
        else if budget > 0 then begin
          let engine_n =
            List.length
              (List.filter (fun (id, _) -> Hashtbl.mem failed id) retryable)
          in
          count_engine_retry acc engine_n;
          count_conn_retry acc (List.length retryable - engine_n);
          round retryable (budget - 1)
        end
        else
          (* Out of budget: record the terminal [engine_failed]
             responses; everything still unanswered is a protocol
             error. *)
          List.iter
            (fun (id, _) ->
              match Hashtbl.find_opt failed id with
              | Some line -> record acc ~sent_at:None line
              | None -> count_protocol_errors acc 1)
            retryable
  in
  round reqs retry_budget

(* ------------------------------------------------------------------ *)
(* Entry point and reporting *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

let run ?(seed = 1) ?(exhaustive = false) ?(nodes = 2) ?(depth = 24)
    ?nodes_choices ?depths ?deadline_ms ?configs ?engines
    ?(retry_budget = 2) ~mode ~requests addr =
  let configs =
    match configs with
    | Some (_ :: _ as l) -> l
    | _ ->
        [ "passive"; "time-windows"; "small-shifting"; "full-shifting" ]
  in
  let engines =
    match engines with Some (_ :: _ as l) -> l | _ -> [ "bdd" ]
  in
  let nodes_choices =
    match nodes_choices with Some (_ :: _ as l) -> l | _ -> [ nodes ]
  in
  let depths = match depths with Some (_ :: _ as l) -> l | _ -> [ depth ] in
  let reqs =
    stream ~seed ~exhaustive ~nodes_choices ~depths ~deadline_ms ~configs
      ~engines ~requests
  in
  let a = acc () in
  let t0 = Unix.gettimeofday () in
  let retry_budget = max 0 retry_budget in
  (match mode with
  | Closed_loop c -> run_closed ~concurrency:c ~retry_budget ~reqs addr a
  | Open_loop r ->
      run_open ~rate:(Float.max 0.001 r) ~retry_budget ~reqs addr a);
  let t_end = if a.last_response_at > 0. then a.last_response_at else t0 in
  let wall_s = Float.max 1e-9 (t_end -. t0) in
  let sorted = Array.of_list a.latencies_ms in
  Array.sort compare sorted;
  let per_worker =
    List.sort compare (Hashtbl.fold (fun w n l -> (w, n) :: l) a.workers [])
  in
  (* max/mean over workers that answered at least once: 1.0 is a
     perfectly even spread; the MIT 6.824 yardstick for how far the
     ring is from wasting its parallelism. *)
  let imbalance =
    match per_worker with
    | [] -> 0.
    | l ->
        let counts = List.map (fun (_, n) -> float_of_int n) l in
        let mean =
          List.fold_left ( +. ) 0. counts /. float_of_int (List.length counts)
        in
        List.fold_left Float.max 0. counts /. Float.max 1e-9 mean
  in
  {
    requests;
    ok = a.ok;
    degraded = a.degraded;
    holds = a.holds;
    violated = a.violated;
    unknown = a.unknown;
    deadline_exceeded = a.deadline_exceeded;
    overloaded = a.overloaded;
    cancelled = a.cancelled;
    protocol_errors = a.protocol_errors;
    retries = a.conn_retries + a.engine_retries;
    conn_retries = a.conn_retries;
    engine_retries = a.engine_retries;
    engine_failed = a.engine_failed;
    cache_hits = a.cache_hits;
    coalesced = a.coalesced;
    session_reuses = a.session_reuses;
    hedged = a.hedged;
    breaker_opens = 0;
    wall_s;
    throughput_rps = float_of_int requests /. wall_s;
    p50_ms = percentile sorted 50.;
    p95_ms = percentile sorted 95.;
    p99_ms = percentile sorted 99.;
    max_ms = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
    per_worker;
    imbalance;
  }

let mode_to_json = function
  | Open_loop r ->
      Json.Obj
        [ ("shape", Json.String "open-loop"); ("rate_rps", Json.Float r) ]
  | Closed_loop c ->
      Json.Obj
        [ ("shape", Json.String "closed-loop"); ("concurrency", Json.Int c) ]

let report_to_json ~mode r =
  Json.Obj
    [
      ("mode", mode_to_json mode);
      ("requests", Json.Int r.requests);
      ("ok", Json.Int r.ok);
      ("degraded", Json.Int r.degraded);
      ("holds", Json.Int r.holds);
      ("violated", Json.Int r.violated);
      ("unknown", Json.Int r.unknown);
      ("deadline_exceeded", Json.Int r.deadline_exceeded);
      ("overloaded", Json.Int r.overloaded);
      ("cancelled", Json.Int r.cancelled);
      ("protocol_errors", Json.Int r.protocol_errors);
      ("retries", Json.Int r.retries);
      ("conn_retries", Json.Int r.conn_retries);
      ("engine_retries", Json.Int r.engine_retries);
      ("engine_failed", Json.Int r.engine_failed);
      ("cache_hits", Json.Int r.cache_hits);
      ("coalesced", Json.Int r.coalesced);
      ("session_reuses", Json.Int r.session_reuses);
      ("hedged", Json.Int r.hedged);
      ("breaker_opens", Json.Int r.breaker_opens);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("max_ms", Json.Float r.max_ms);
      ( "per_worker",
        Json.Obj (List.map (fun (w, n) -> (w, Json.Int n)) r.per_worker) );
      ("imbalance", Json.Float r.imbalance);
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>requests  %d (%d ok, %d degraded, %d overloaded, %d cancelled, %d \
     protocol errors)@,verdicts  %d holds, %d violated, %d unknown (%d past \
     deadline)@,dedup     %d cache hits, %d coalesced, %d warm-session \
     reuses@,resilience %d retries (%d conn, %d engine), %d engine-failed \
     responses, %d hedged@,wall      %.2fs (%.1f req/s)@,latency   p50 \
     %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms@]@."
    r.requests r.ok r.degraded r.overloaded r.cancelled r.protocol_errors
    r.holds r.violated r.unknown r.deadline_exceeded r.cache_hits r.coalesced
    r.session_reuses r.retries r.conn_retries r.engine_retries r.engine_failed
    r.hedged r.wall_s r.throughput_rps r.p50_ms r.p95_ms r.p99_ms r.max_ms;
  if r.per_worker <> [] then
    Format.fprintf ppf "workers   %s (imbalance %.2f)@."
      (String.concat ", "
         (List.map (fun (w, n) -> Printf.sprintf "%s:%d" w n) r.per_worker))
      r.imbalance
