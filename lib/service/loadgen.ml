(* Open-/closed-loop load generation — see the interface. *)

type mode = Open_loop of float | Closed_loop of int

type report = {
  requests : int;
  ok : int;
  holds : int;
  violated : int;
  unknown : int;
  deadline_exceeded : int;
  overloaded : int;
  cancelled : int;
  protocol_errors : int;
  cache_hits : int;
  coalesced : int;
  wall_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let connect addr =
  match (addr : Server.addr) with
  | Server.Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (inet, port));
      fd

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* A blocking line reader over a raw fd (one per connection, single
   consumer). Returns [None] on EOF with an empty buffer. *)
type line_reader = { fd : Unix.file_descr; rbuf : Buffer.t; scratch : Bytes.t }

let line_reader fd = { fd; rbuf = Buffer.create 512; scratch = Bytes.create 8192 }

let rec read_line_opt r =
  let s = Buffer.contents r.rbuf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear r.rbuf;
      Buffer.add_substring r.rbuf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  | None -> (
      match Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
      | 0 -> if s = "" then None else (Buffer.clear r.rbuf; Some s)
      | n ->
          Buffer.add_subbytes r.rbuf r.scratch 0 n;
          read_line_opt r
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          None)

(* ------------------------------------------------------------------ *)
(* The request stream *)

let sample rng l = List.nth l (Random.State.int rng (List.length l))

let stream ~seed ~nodes ~depth ~deadline_ms ~configs ~engines ~requests =
  let rng = Random.State.make [| seed |] in
  List.init requests (fun i ->
      let config = sample rng configs in
      let engine = sample rng engines in
      ( Printf.sprintf "r%d" i,
        Json.to_string
          (Protocol.request
             ~id:(Printf.sprintf "r%d" i)
             ~config ~nodes ~engine ~depth ?deadline_ms ())
        ^ "\n" ))

(* ------------------------------------------------------------------ *)
(* Shared accounting *)

type acc = {
  lock : Mutex.t;
  mutable ok : int;
  mutable holds : int;
  mutable violated : int;
  mutable unknown : int;
  mutable deadline_exceeded : int;
  mutable overloaded : int;
  mutable cancelled : int;
  mutable protocol_errors : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable latencies_ms : float list;  (** answered requests only *)
  mutable last_response_at : float;
}

let acc () =
  {
    lock = Mutex.create ();
    ok = 0;
    holds = 0;
    violated = 0;
    unknown = 0;
    deadline_exceeded = 0;
    overloaded = 0;
    cancelled = 0;
    protocol_errors = 0;
    cache_hits = 0;
    coalesced = 0;
    latencies_ms = [];
    last_response_at = 0.;
  }

let record acc ~sent_at line =
  let at = Unix.gettimeofday () in
  Mutex.lock acc.lock;
  acc.last_response_at <- Float.max acc.last_response_at at;
  (match Protocol.decode_response_line line with
  | Error _ -> acc.protocol_errors <- acc.protocol_errors + 1
  | Ok (Protocol.Error _) -> acc.protocol_errors <- acc.protocol_errors + 1
  | Ok (Protocol.Overloaded _) -> acc.overloaded <- acc.overloaded + 1
  | Ok (Protocol.Cancelled _) -> acc.cancelled <- acc.cancelled + 1
  | Ok (Protocol.Answer { cache_hit; coalesced; verdict; _ }) ->
      acc.ok <- acc.ok + 1;
      (match sent_at with
      | Some t0 -> acc.latencies_ms <- ((at -. t0) *. 1000.) :: acc.latencies_ms
      | None -> ());
      if cache_hit then acc.cache_hits <- acc.cache_hits + 1;
      if coalesced then acc.coalesced <- acc.coalesced + 1;
      (match verdict with
      | Protocol.Holds _ -> acc.holds <- acc.holds + 1
      | Protocol.Violated _ -> acc.violated <- acc.violated + 1
      | Protocol.Unknown { reason; _ } ->
          acc.unknown <- acc.unknown + 1;
          if reason = Some "deadline_exceeded" then
            acc.deadline_exceeded <- acc.deadline_exceeded + 1));
  Mutex.unlock acc.lock

(* ------------------------------------------------------------------ *)
(* The two loops *)

let run_closed ~concurrency ~reqs addr acc =
  let next = Atomic.make 0 in
  let reqs = Array.of_list reqs in
  let worker () =
    let fd = connect addr in
    let reader = line_reader fd in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length reqs then begin
        let _, line = reqs.(i) in
        let t0 = Unix.gettimeofday () in
        write_all fd line 0 (String.length line);
        (match read_line_opt reader with
        | Some resp -> record acc ~sent_at:(Some t0) resp
        | None ->
            Mutex.lock acc.lock;
            acc.protocol_errors <- acc.protocol_errors + 1;
            Mutex.unlock acc.lock);
        go ()
      end
    in
    go ();
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let domains =
    List.init (max 1 concurrency) (fun _ -> Domain.spawn worker)
  in
  List.iter Domain.join domains

let run_open ~rate ~reqs addr acc =
  let fd = connect addr in
  let sent = Hashtbl.create (List.length reqs) in
  let sent_lock = Mutex.create () in
  let t_start = Unix.gettimeofday () in
  let writer =
    Domain.spawn (fun () ->
        List.iteri
          (fun i (id, line) ->
            let due = t_start +. (float_of_int i /. rate) in
            let dt = due -. Unix.gettimeofday () in
            if dt > 0. then Unix.sleepf dt;
            Mutex.lock sent_lock;
            Hashtbl.replace sent id (Unix.gettimeofday ());
            Mutex.unlock sent_lock;
            write_all fd line 0 (String.length line))
          reqs)
  in
  let reader = line_reader fd in
  let expected = List.length reqs in
  let rec read_responses got =
    if got < expected then
      match read_line_opt reader with
      | None ->
          Mutex.lock acc.lock;
          acc.protocol_errors <- acc.protocol_errors + (expected - got);
          Mutex.unlock acc.lock
      | Some line ->
          let sent_at =
            match
              Option.bind (Result.to_option (Protocol.decode_response_line line))
                Protocol.response_id
            with
            | Some id ->
                Mutex.lock sent_lock;
                let t0 = Hashtbl.find_opt sent id in
                Mutex.unlock sent_lock;
                t0
            | None -> None
          in
          record acc ~sent_at line;
          read_responses (got + 1)
  in
  read_responses 0;
  Domain.join writer;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry point and reporting *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) rank))

let run ?(seed = 1) ?(nodes = 2) ?(depth = 24) ?deadline_ms ?configs ?engines
    ~mode ~requests addr =
  let configs =
    match configs with
    | Some (_ :: _ as l) -> l
    | _ ->
        [ "passive"; "time-windows"; "small-shifting"; "full-shifting" ]
  in
  let engines =
    match engines with Some (_ :: _ as l) -> l | _ -> [ "bdd" ]
  in
  let reqs =
    stream ~seed ~nodes ~depth ~deadline_ms ~configs ~engines ~requests
  in
  let a = acc () in
  let t0 = Unix.gettimeofday () in
  (match mode with
  | Closed_loop c -> run_closed ~concurrency:c ~reqs addr a
  | Open_loop r -> run_open ~rate:(Float.max 0.001 r) ~reqs addr a);
  let t_end = if a.last_response_at > 0. then a.last_response_at else t0 in
  let wall_s = Float.max 1e-9 (t_end -. t0) in
  let sorted = Array.of_list a.latencies_ms in
  Array.sort compare sorted;
  {
    requests;
    ok = a.ok;
    holds = a.holds;
    violated = a.violated;
    unknown = a.unknown;
    deadline_exceeded = a.deadline_exceeded;
    overloaded = a.overloaded;
    cancelled = a.cancelled;
    protocol_errors = a.protocol_errors;
    cache_hits = a.cache_hits;
    coalesced = a.coalesced;
    wall_s;
    throughput_rps = float_of_int requests /. wall_s;
    p50_ms = percentile sorted 50.;
    p95_ms = percentile sorted 95.;
    p99_ms = percentile sorted 99.;
    max_ms = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
  }

let mode_to_json = function
  | Open_loop r ->
      Json.Obj
        [ ("shape", Json.String "open-loop"); ("rate_rps", Json.Float r) ]
  | Closed_loop c ->
      Json.Obj
        [ ("shape", Json.String "closed-loop"); ("concurrency", Json.Int c) ]

let report_to_json ~mode r =
  Json.Obj
    [
      ("mode", mode_to_json mode);
      ("requests", Json.Int r.requests);
      ("ok", Json.Int r.ok);
      ("holds", Json.Int r.holds);
      ("violated", Json.Int r.violated);
      ("unknown", Json.Int r.unknown);
      ("deadline_exceeded", Json.Int r.deadline_exceeded);
      ("overloaded", Json.Int r.overloaded);
      ("cancelled", Json.Int r.cancelled);
      ("protocol_errors", Json.Int r.protocol_errors);
      ("cache_hits", Json.Int r.cache_hits);
      ("coalesced", Json.Int r.coalesced);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("max_ms", Json.Float r.max_ms);
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>requests  %d (%d ok, %d overloaded, %d cancelled, %d protocol \
     errors)@,verdicts  %d holds, %d violated, %d unknown (%d past \
     deadline)@,dedup     %d cache hits, %d coalesced@,wall      %.2fs \
     (%.1f req/s)@,latency   p50 %.1fms  p95 %.1fms  p99 %.1fms  max \
     %.1fms@]@."
    r.requests r.ok r.overloaded r.cancelled r.protocol_errors r.holds
    r.violated r.unknown r.deadline_exceeded r.cache_hits r.coalesced
    r.wall_s r.throughput_rps r.p50_ms r.p95_ms r.p99_ms r.max_ms
