(* DIMACS CNF reader/writer.

   Makes the solver usable as a standalone tool (bin/sat_solve) and
   lets instances generated here be cross-checked against external
   solvers. The format: a header "p cnf <vars> <clauses>" followed by
   whitespace-separated nonzero literals, each clause terminated by 0;
   lines starting with 'c' are comments. *)

type instance = {
  nvars : int;
  clauses : int list list;  (** DIMACS literals: nonzero, +v / -v *)
}

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Tokenize a channel into ints, skipping comments. *)
let tokens_of_lines lines =
  List.concat_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then []
      else
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> ""))
    lines

let of_lines lines =
  match tokens_of_lines lines with
  | "p" :: "cnf" :: nv :: nc :: rest ->
      let nvars =
        try int_of_string nv
        with Failure _ -> parse_error "bad variable count %S" nv
      in
      let nclauses =
        try int_of_string nc
        with Failure _ -> parse_error "bad clause count %S" nc
      in
      let lits =
        List.map
          (fun tok ->
            match int_of_string_opt tok with
            | Some l -> l
            | None -> parse_error "bad literal %S" tok)
          rest
      in
      let clauses =
        let rec go current acc = function
          | [] ->
              if current <> [] then
                parse_error "unterminated final clause"
              else List.rev acc
          | 0 :: rest -> go [] (List.rev current :: acc) rest
          | l :: rest ->
              if abs l > nvars then
                parse_error "literal %d out of range (p cnf %d ...)" l nvars;
              go (l :: current) acc rest
        in
        go [] [] lits
      in
      if List.length clauses <> nclauses then
        parse_error "header promised %d clauses, found %d" nclauses
          (List.length clauses);
      { nvars; clauses }
  | _ -> parse_error "missing 'p cnf' header"

let of_string s = of_lines (String.split_on_char '\n' s)

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines (read []))

let to_string { nvars; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let to_file inst path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

(* Load an instance into a solver. DIMACS variable i (1-based) becomes
   solver variable i-1. *)
let load inst =
  let s = Solver.create () in
  for _ = 1 to inst.nvars do
    ignore (Solver.new_var s)
  done;
  List.iter
    (fun clause ->
      Solver.add_clause s
        (List.map
           (fun l ->
             if l > 0 then Solver.pos (l - 1) else Solver.neg (-l - 1))
           clause))
    inst.clauses;
  s

(* The model of a satisfiable instance, as DIMACS literals. *)
let model_of inst s =
  let m = Solver.model s in
  List.init inst.nvars (fun v -> if m.(v) then v + 1 else -(v + 1))
