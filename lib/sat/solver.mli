(** A CDCL (conflict-driven clause learning) SAT solver.

    Implements the standard modern architecture: two-watched-literal unit
    propagation, first-UIP conflict analysis with backjumping, VSIDS-style
    variable activities with phase saving, and Luby restarts. Supports
    solving under assumptions, which the bounded model checker uses to
    query successive unrolling depths incrementally.

    Variables are integers allocated by {!new_var}; literals are built
    with {!pos} and {!neg}. *)

type t
(** A solver instance: variable pool, clause database, search state. *)

type lit = private int
(** A literal: a variable with a sign. *)

val pos : int -> lit
(** Positive literal of a variable. *)

val neg : int -> lit
(** Negative literal of a variable. *)

val negate : lit -> lit
val lit_var : lit -> int
val lit_sign : lit -> bool
(** [lit_sign l] is [true] for a positive literal. *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable, returned as its integer index. *)

val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause. Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable. Duplicate literals
    are removed; tautologies are ignored. *)

type result = Sat | Unsat

val solve : ?assumptions:lit list -> t -> result
(** Solve the current clause set under the given assumptions. The solver
    may be queried again afterwards with different assumptions; learned
    clauses are kept. *)

val value : t -> int -> bool
(** Model value of a variable after a [Solver] answer. Variables not fixed
    by the model default to [false]. *)

val stats : t -> string
(** Human-readable search statistics (conflicts, propagations, ...). *)

val conflicts : t -> int
(** Total conflicts analyzed so far — the standard single-number proxy
    for SAT search effort, reported by the portfolio's run telemetry. *)

val counters : t -> (string * int) list
(** The search-effort counters ([sat.conflicts], [sat.decisions],
    [sat.propagations], [sat.restarts], clause-database sizes) as an
    open counter set, sorted by name — the machine-readable form of
    {!stats}, consumed by the {!Obs}-based engine instrumentation. *)
