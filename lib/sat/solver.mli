(** A CDCL (conflict-driven clause learning) SAT solver.

    Implements the standard modern architecture: two-watched-literal unit
    propagation, first-UIP conflict analysis with backjumping, VSIDS-style
    variable activities with phase saving, and Luby restarts. Supports
    solving under assumptions, which the bounded model checker uses to
    query successive unrolling depths incrementally.

    Variables are integers allocated by {!new_var}; literals are built
    with {!pos} and {!neg}. *)

type t
(** A solver instance: variable pool, clause database, search state. *)

type lit = private int
(** A literal: a variable with a sign. *)

val pos : int -> lit
(** Positive literal of a variable. *)

val neg : int -> lit
(** Negative literal of a variable. *)

val negate : lit -> lit
val lit_var : lit -> int
val lit_sign : lit -> bool
(** [lit_sign l] is [true] for a positive literal. *)

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable, returned as its integer index. *)

val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause. Adding the empty clause (or a clause that simplifies to
    it) makes the instance permanently unsatisfiable. Duplicate literals
    are removed; tautologies are ignored. Inside an open {!push} scope
    the clause is attached to that scope and disappears at the matching
    {!pop}. *)

type result = Sat | Unsat

val solve : ?assumptions:lit list -> t -> result
(** Solve the current clause set under the given assumptions. The solver
    may be queried again afterwards with different assumptions; learned
    clauses are kept across queries (the session surface the bounded
    model checker builds on). Selector literals of live activation
    groups are assumed automatically. *)

(** {2 Session surface: activation groups and scopes}

    A {!group} is a MiniSat-style retractable clause set: each clause
    added to the group carries the negation of a hidden selector
    variable, and {!solve} assumes the selector true while the group is
    active. {!retract} asserts the selector false at the root, which
    permanently satisfies — i.e. erases — the group's clauses {e and}
    every learned clause derived from them, while all other learned
    clauses survive for the next query. *)

type group
(** A named retractable clause group. *)

val new_group : t -> group
(** Allocate a fresh activation group (costs one selector variable). *)

val add_clause_in : t -> group -> lit list -> unit
(** Add a clause to a group. Raises [Invalid_argument] if the group has
    been retracted. *)

val retract : t -> group -> unit
(** Permanently retire a group and its clauses. Idempotent. *)

val group_active : group -> bool

val push : t -> unit
(** Open a scope: clauses added with {!add_clause} until the matching
    {!pop} belong to the scope and are retracted by it. Scopes nest. *)

val pop : t -> unit
(** Close the innermost scope, retracting its clauses. Raises
    [Invalid_argument] if no scope is open. *)

(** {2 Model access} *)

val model : t -> bool array
(** The satisfying assignment of the most recent {!solve} that answered
    [Sat], indexed by variable. Raises [Invalid_argument] if the last
    answer was not [Sat] or clauses were added since — there is no
    silent default. *)

val value_opt : t -> int -> bool option
(** Three-valued model read: [Some b] if the variable was fixed by the
    last model, [None] if there is no current model or the variable was
    allocated after it was captured. *)

val stats : t -> string
(** Human-readable search statistics (conflicts, propagations, ...). *)

val conflicts : t -> int
(** Total conflicts analyzed so far — the standard single-number proxy
    for SAT search effort, reported by the portfolio's run telemetry. *)

val counters : t -> (string * int) list
(** The search-effort counters ([sat.conflicts], [sat.decisions],
    [sat.propagations], [sat.restarts], clause-database sizes) as an
    open counter set, sorted by name — the machine-readable form of
    {!stats}, consumed by the {!Obs}-based engine instrumentation. *)
