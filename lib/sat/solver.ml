type lit = int

let pos v = v * 2
let neg v = (v * 2) + 1
let negate l = l lxor 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0

type result = Sat | Unsat

(* Growable int vector. *)
module Veci = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let len v = v.len
  let shrink v n = v.len <- n
end

(* Max-heap over variables ordered by activity, with position index for
   O(log n) increase-key. *)
module Heap = struct
  type t = {
    mutable heap : int array;
    mutable size : int;
    mutable pos : int array; (* var -> index in heap, or -1 *)
  }

  let create () = { heap = Array.make 16 0; size = 0; pos = Array.make 16 (-1) }

  let ensure_var h v =
    if v >= Array.length h.pos then begin
      let n = max (2 * Array.length h.pos) (v + 1) in
      let pos = Array.make n (-1) in
      Array.blit h.pos 0 pos 0 (Array.length h.pos);
      h.pos <- pos
    end

  let mem h v = v < Array.length h.pos && h.pos.(v) >= 0

  let swap h i j =
    let a = h.heap.(i) and b = h.heap.(j) in
    h.heap.(i) <- b;
    h.heap.(j) <- a;
    h.pos.(b) <- i;
    h.pos.(a) <- j

  let rec up act h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if act h.heap.(i) > act h.heap.(p) then begin
        swap h i p;
        up act h p
      end
    end

  let rec down act h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < h.size && act h.heap.(l) > act h.heap.(!best) then best := l;
    if r < h.size && act h.heap.(r) > act h.heap.(!best) then best := r;
    if !best <> i then begin
      swap h i !best;
      down act h !best
    end

  let insert act h v =
    ensure_var h v;
    if not (mem h v) then begin
      if h.size = Array.length h.heap then begin
        let heap = Array.make (2 * h.size) 0 in
        Array.blit h.heap 0 heap 0 h.size;
        h.heap <- heap
      end;
      h.heap.(h.size) <- v;
      h.pos.(v) <- h.size;
      h.size <- h.size + 1;
      up act h h.pos.(v)
    end

  let bump act h v = if mem h v then up act h h.pos.(v)

  let pop act h =
    if h.size = 0 then None
    else begin
      let v = h.heap.(0) in
      h.size <- h.size - 1;
      h.pos.(v) <- -1;
      if h.size > 0 then begin
        let last = h.heap.(h.size) in
        h.heap.(0) <- last;
        h.pos.(last) <- 0;
        down act h 0
      end;
      Some v
    end
end

(* A retractable activation group: every clause added to the group
   carries the negated selector literal, and [solve] assumes the
   selector true while the group is active. Retraction asserts the
   selector false at the root, permanently satisfying (= erasing) the
   group's clauses and every learned clause derived from them. *)
type group = { sel : int; mutable active : bool }

type t = {
  mutable nvars : int;
  mutable assigns : int array; (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array; (* var -> clause index or -1 *)
  mutable phase : bool array;
  mutable activity : float array;
  mutable clauses : int array array;
  mutable nclauses : int;
  (* Per-clause metadata: learned clauses carry their literal-block
     distance (LBD, the number of distinct decision levels at learn
     time); original clauses carry 0 and are never deleted. *)
  mutable lbd : int array;
  mutable watches : Veci.t array; (* lit -> clause indices *)
  trail : Veci.t;
  trail_lim : Veci.t;
  mutable qhead : int;
  order : Heap.t;
  mutable var_inc : float;
  mutable ok : bool;
  mutable conflicts : int;
  mutable propagations : int;
  mutable decisions : int;
  mutable restarts : int;
  mutable learned : int;
  mutable deleted : int;
  mutable reduce_at : int; (* conflict count triggering the next DB reduction *)
  mutable groups : group list; (* active groups, newest first *)
  mutable scopes : group list; (* push/pop stack (a subset of [groups]) *)
  mutable last_model : bool array option; (* assignment snapshot of the last Sat answer *)
}

let create () =
  {
    nvars = 0;
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    phase = Array.make 16 false;
    activity = Array.make 16 0.0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    lbd = Array.make 64 0;
    watches = Array.init 32 (fun _ -> Veci.create ());
    trail = Veci.create ();
    trail_lim = Veci.create ();
    qhead = 0;
    order = Heap.create ();
    var_inc = 1.0;
    ok = true;
    conflicts = 0;
    propagations = 0;
    decisions = 0;
    restarts = 0;
    learned = 0;
    deleted = 0;
    reduce_at = 2000;
    groups = [];
    scopes = [];
    last_model = None;
  }

let nvars s = s.nvars

let grow_arrays s n =
  let g a def =
    let b = Array.make n def in
    Array.blit a 0 b 0 (Array.length a);
    b
  in
  s.assigns <- g s.assigns (-1);
  s.level <- g s.level 0;
  s.reason <- g s.reason (-1);
  s.phase <- g s.phase false;
  s.activity <- g s.activity 0.0;
  let w = Array.init (2 * n) (fun _ -> Veci.create ()) in
  Array.blit s.watches 0 w 0 (Array.length s.watches);
  s.watches <- w

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  if v >= Array.length s.assigns then grow_arrays s (2 * (v + 1));
  Heap.insert (fun u -> s.activity.(u)) s.order v;
  v

let value_lit s l =
  let a = s.assigns.(lit_var l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

let decision_level s = Veci.len s.trail_lim

let enqueue s l reason =
  let v = lit_var l in
  s.assigns.(v) <- (if lit_sign l then 1 else 0);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- lit_sign l;
  Veci.push s.trail l

(* Backtracking is defined before clause addition so the latter can
   reset to level 0: clauses must be installed at the root, or a unit
   enqueued at a stale decision level would be silently unassigned —
   and lost — by the next solve's restart. *)
let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Veci.get s.trail_lim lvl in
    for i = Veci.len s.trail - 1 downto bound do
      let v = lit_var (Veci.get s.trail i) in
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1;
      Heap.insert (fun u -> s.activity.(u)) s.order v
    done;
    Veci.shrink s.trail bound;
    Veci.shrink s.trail_lim lvl;
    s.qhead <- Veci.len s.trail
  end

(* Append a clause to the database and watch its first two literals.
   [lbd] is 0 for original (irredundant) clauses. *)
let push_clause s lits ~lbd =
  if s.nclauses = Array.length s.clauses then begin
    let c = Array.make (2 * s.nclauses) [||] in
    Array.blit s.clauses 0 c 0 s.nclauses;
    s.clauses <- c;
    let l = Array.make (2 * s.nclauses) 0 in
    Array.blit s.lbd 0 l 0 s.nclauses;
    s.lbd <- l
  end;
  let idx = s.nclauses in
  s.clauses.(idx) <- lits;
  s.lbd.(idx) <- lbd;
  s.nclauses <- idx + 1;
  Veci.push s.watches.(negate lits.(0)) idx;
  Veci.push s.watches.(negate lits.(1)) idx;
  idx

let add_clause_array s lits =
  cancel_until s 0;
  s.last_model <- None;
  if s.ok then begin
    let n = Array.length lits in
    if n = 0 then s.ok <- false
    else if n = 1 then begin
      match value_lit s lits.(0) with
      | 1 -> ()
      | 0 -> s.ok <- false
      | _ -> enqueue s lits.(0) (-1)
    end
    else ignore (push_clause s lits ~lbd:0)
  end

(* Root-level clause addition: normalize (dedupe, drop tautologies and
   level-0-false literals, detect clauses already satisfied at level 0)
   and install. Ignores the push/pop scope stack — retraction units and
   group clauses route here directly. *)
let add_clause_root s lits =
  cancel_until s 0;
  let lits = List.sort_uniq compare lits in
  let taut =
    List.exists (fun l -> List.mem (negate l) lits) lits
  in
  if not taut then begin
    let sat0 = List.exists (fun l -> value_lit s l = 1 && s.level.(lit_var l) = 0) lits in
    if not sat0 then begin
      let lits =
        List.filter
          (fun l -> not (value_lit s l = 0 && s.level.(lit_var l) = 0))
          lits
      in
      add_clause_array s (Array.of_list lits)
    end
  end

let add_clause s lits =
  match s.scopes with
  | [] -> add_clause_root s lits
  | g :: _ -> add_clause_root s (neg g.sel :: lits)

(* Activation groups. *)

let new_group s =
  let g = { sel = new_var s; active = true } in
  s.groups <- g :: s.groups;
  g

let group_active g = g.active

let add_clause_in s g lits =
  if not g.active then
    invalid_arg "Solver.add_clause_in: group already retracted";
  add_clause_root s (neg g.sel :: lits)

let retract s g =
  if g.active then begin
    g.active <- false;
    s.groups <- List.filter (fun g' -> g' != g) s.groups;
    add_clause_root s [ neg g.sel ]
  end

let push s = s.scopes <- new_group s :: s.scopes

let pop s =
  match s.scopes with
  | [] -> invalid_arg "Solver.pop: no open scope"
  | g :: rest ->
      s.scopes <- rest;
      retract s g

(* Unit propagation with two watched literals. Returns the index of a
   conflicting clause, or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < Veci.len s.trail do
    let l = Veci.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let ws = s.watches.(l) in
    let n = Veci.len ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Veci.get ws !i in
      incr i;
      let c = s.clauses.(ci) in
      (* Ensure the false literal (negate l) is at position 1. *)
      if c.(0) = negate l then begin
        c.(0) <- c.(1);
        c.(1) <- negate l
      end;
      if value_lit s c.(0) = 1 then begin
        (* Clause satisfied: keep the watch. *)
        Veci.set ws !j ci;
        incr j
      end
      else begin
        (* Look for a new literal to watch. *)
        let len = Array.length c in
        let k = ref 2 in
        while !k < len && value_lit s c.(!k) = 0 do
          incr k
        done;
        if !k < len then begin
          (* Move the watch. *)
          c.(1) <- c.(!k);
          c.(!k) <- negate l;
          Veci.push s.watches.(negate c.(1)) ci
        end
        else begin
          (* Unit or conflicting. *)
          Veci.set ws !j ci;
          incr j;
          if value_lit s c.(0) = 0 then begin
            conflict := ci;
            (* Copy the rest of the watch list back and stop. *)
            while !i < n do
              Veci.set ws !j (Veci.get ws !i);
              incr i;
              incr j
            done
          end
          else enqueue s c.(0) ci
        end
      end
    done;
    Veci.shrink ws !j
  done;
  !conflict

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.bump (fun u -> s.activity.(u)) s.order v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* First-UIP conflict analysis with recursive clause minimization.
   Returns (learned clause with asserting literal first, backtrack
   level, literal-block distance). *)
let analyze s confl =
  let seen = Array.make s.nvars false in
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let trail_idx = ref (Veci.len s.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!confl) in
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length c - 1 do
      let q = c.(k) in
      let v = lit_var q in
      if (not seen.(v)) && s.level.(v) > 0 then begin
        seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else learned := q :: !learned
      end
    done;
    (* Find the next seen literal on the trail. *)
    while not seen.(lit_var (Veci.get s.trail !trail_idx)) do
      decr trail_idx
    done;
    let q = Veci.get s.trail !trail_idx in
    decr trail_idx;
    let v = lit_var q in
    seen.(v) <- false;
    decr counter;
    p := q;
    if !counter = 0 then continue := false
    else confl := s.reason.(v)
  done;
  (* Minimization: a literal whose reason clause consists only of
     literals already marked [seen] (or fixed at level 0) is implied by
     the rest of the clause and can be dropped. The recursion follows
     reason chains; [seen] stays set on the kept literals, which is
     exactly the certificate the check needs. *)
  let rec redundant q depth =
    depth < 32
    &&
    let v = lit_var q in
    let r = s.reason.(v) in
    r >= 0
    &&
    let c = s.clauses.(r) in
    let ok = ref true in
    for k = 1 to Array.length c - 1 do
      if !ok then begin
        let u = lit_var c.(k) in
        if s.level.(u) > 0 && not seen.(u) then
          if not (redundant c.(k) (depth + 1)) then ok := false
          else seen.(u) <- true (* memoize along the chain *)
      end
    done;
    !ok
  in
  let learned = List.filter (fun q -> not (redundant q 0)) !learned in
  let learned = negate !p :: learned in
  let back_level =
    List.fold_left
      (fun acc l ->
        if l = negate !p then acc else max acc s.level.(lit_var l))
      0 learned
  in
  (* LBD: distinct decision levels in the learned clause. *)
  let lbd =
    let levels = Hashtbl.create 8 in
    List.iter (fun l -> Hashtbl.replace levels s.level.(lit_var l) ()) learned;
    Hashtbl.length levels
  in
  (Array.of_list learned, back_level, lbd)

let record_learned s lits ~lbd =
  s.learned <- s.learned + 1;
  if Array.length lits = 1 then enqueue s lits.(0) (-1)
  else begin
    (* Watch the asserting literal and a literal of the backtrack
       level so propagation stays sound. *)
    let best = ref 1 in
    for k = 2 to Array.length lits - 1 do
      if s.level.(lit_var lits.(k)) > s.level.(lit_var lits.(!best)) then
        best := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    let idx = push_clause s lits ~lbd:(max 1 lbd) in
    enqueue s lits.(0) idx
  end

(* Clause-database reduction: once the learned clauses pile up, drop
   the worse (higher-LBD) half. Called at a restart point, where no
   surviving assignment depends on a deletable clause except through
   the root level. Indexes shift, so the watch lists and reason array
   are rebuilt against the compacted database. *)
let reduce_db s =
  (* Clauses currently acting as a reason must survive. *)
  let is_reason = Hashtbl.create 64 in
  for i = 0 to Veci.len s.trail - 1 do
    let r = s.reason.(lit_var (Veci.get s.trail i)) in
    if r >= 0 then Hashtbl.replace is_reason r ()
  done;
  let deletable = ref [] in
  for idx = 0 to s.nclauses - 1 do
    if s.lbd.(idx) > 2 && not (Hashtbl.mem is_reason idx) then
      deletable := idx :: !deletable
  done;
  let sorted =
    List.sort (fun a b -> compare s.lbd.(b) s.lbd.(a)) !deletable
  in
  let to_drop = List.length sorted / 2 in
  let dropped = Hashtbl.create (max 16 to_drop) in
  List.iteri
    (fun rank idx -> if rank < to_drop then Hashtbl.replace dropped idx ())
    sorted;
  if Hashtbl.length dropped > 0 then begin
    (* Compact the clause arrays and build the index remapping. *)
    let remap = Array.make s.nclauses (-1) in
    let next = ref 0 in
    for idx = 0 to s.nclauses - 1 do
      if not (Hashtbl.mem dropped idx) then begin
        remap.(idx) <- !next;
        s.clauses.(!next) <- s.clauses.(idx);
        s.lbd.(!next) <- s.lbd.(idx);
        incr next
      end
    done;
    s.deleted <- s.deleted + (s.nclauses - !next);
    s.nclauses <- !next;
    (* Rebuild the watch lists from the two leading literals of every
       surviving clause (the watching invariant stores them there). *)
    Array.iter (fun w -> Veci.shrink w 0) s.watches;
    for idx = 0 to s.nclauses - 1 do
      let c = s.clauses.(idx) in
      Veci.push s.watches.(negate c.(0)) idx;
      Veci.push s.watches.(negate c.(1)) idx
    done;
    (* Remap reasons (all survivors by construction). *)
    for v = 0 to s.nvars - 1 do
      if s.reason.(v) >= 0 then s.reason.(v) <- remap.(s.reason.(v))
    done
  end

let luby i =
  (* Luby restart sequence: 1 1 2 1 1 2 4 ... *)
  let rec go k i =
    if i = (1 lsl k) - 1 then 1 lsl (k - 1)
    else if i < (1 lsl (k - 1)) - 1 then go (k - 1) i
    else go (k - 1) (i - ((1 lsl (k - 1)) - 1))
  in
  let rec find_k k = if i < (1 lsl k) - 1 then k else find_k (k + 1) in
  go (find_k 1) i

let pick_branch s =
  let rec go () =
    match Heap.pop (fun u -> s.activity.(u)) s.order with
    | None -> None
    | Some v -> if s.assigns.(v) < 0 then Some v else go ()
  in
  go ()

exception Done of result

let solve ?(assumptions = []) s =
  s.last_model <- None;
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    (match propagate s with
    | -1 -> ()
    | _ -> s.ok <- false);
    if not s.ok then Unsat
    else
      (* Selectors of active groups are implicit assumptions: while a
         group lives, its clauses are enforced; once retracted they are
         root-satisfied and the selector must no longer be assumed. *)
      let assumptions =
        Array.of_list
          (List.rev_map (fun g -> pos g.sel) s.groups @ assumptions)
      in
      let restart_no = ref 0 in
      let budget = ref (100 * luby 0) in
      try
        while true do
          let confl = propagate s in
          if confl >= 0 then begin
            s.conflicts <- s.conflicts + 1;
            decr budget;
            if decision_level s = 0 then raise (Done Unsat);
            (* Backjumping may unassign assumption levels; the decision
               loop below re-decides them, so no special case is needed
               here. Assumption inconsistency surfaces either as a level-0
               conflict or as a false assumption at decision time. *)
            let lits, back, lbd = analyze s confl in
            cancel_until s (max 0 back);
            record_learned s lits ~lbd;
            var_decay s
          end
          else if !budget <= 0 && decision_level s > Array.length assumptions
          then begin
            incr restart_no;
            s.restarts <- s.restarts + 1;
            budget := 100 * luby !restart_no;
            cancel_until s (Array.length assumptions)
          end
          else if
            s.conflicts >= s.reduce_at
            && decision_level s <= Array.length assumptions
          then begin
            (* Housekeeping at a quiet point: shed the worse half of
               the learned clauses and grow the next threshold. *)
            cancel_until s 0;
            reduce_db s;
            s.reduce_at <- s.conflicts + 2000 + (300 * (s.deleted / 1000))
          end
          else begin
            (* Assumption decisions first, then activity order. *)
            let dl = decision_level s in
            if dl < Array.length assumptions then begin
              let a = assumptions.(dl) in
              match value_lit s a with
              | 1 ->
                  (* Already implied: open an empty decision level so the
                     indexing into [assumptions] stays aligned. *)
                  Veci.push s.trail_lim (Veci.len s.trail)
              | 0 -> raise (Done Unsat)
              | _ ->
                  Veci.push s.trail_lim (Veci.len s.trail);
                  enqueue s a (-1)
            end
            else begin
              match pick_branch s with
              | None -> raise (Done Sat)
              | Some v ->
                  s.decisions <- s.decisions + 1;
                  Veci.push s.trail_lim (Veci.len s.trail);
                  let l = if s.phase.(v) then pos v else neg v in
                  enqueue s l (-1)
            end
          end
        done;
        assert false
      with Done r ->
        (if r = Sat then
           s.last_model <-
             Some (Array.init s.nvars (fun v -> s.assigns.(v) = 1)));
        r
  end

let model s =
  match s.last_model with
  | Some m -> Array.copy m
  | None -> invalid_arg "Solver.model: no model (last answer was not Sat)"

let value_opt s v =
  match s.last_model with
  | Some m when v >= 0 && v < Array.length m -> Some m.(v)
  | _ -> None

let conflicts s = s.conflicts

let counters s =
  [
    ("sat.clauses", s.nclauses);
    ("sat.conflicts", s.conflicts);
    ("sat.decisions", s.decisions);
    ("sat.deleted", s.deleted);
    ("sat.learned", s.learned);
    ("sat.propagations", s.propagations);
    ("sat.restarts", s.restarts);
    ("sat.vars", s.nvars);
  ]

let stats s =
  Printf.sprintf
    "vars=%d clauses=%d learned=%d deleted=%d conflicts=%d decisions=%d \
     propagations=%d restarts=%d"
    s.nvars s.nclauses s.learned s.deleted s.conflicts s.decisions
    s.propagations s.restarts
