(** The experiment registry: one entry per result of the paper, each
    able to regenerate its numbers/verdicts (see the per-experiment
    index in DESIGN.md and the recorded outcomes in EXPERIMENTS.md).

    Depth bounds default to values that complete in seconds so the
    benchmark harness stays usable; the CLIs expose full-depth runs. *)

type outcome = {
  id : string;
  title : string;
  paper_says : string;  (** the published claim being reproduced *)
  measured : string;  (** what this run produced *)
  matches : bool;  (** does the measured result reproduce the claim? *)
}

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v 2>%s: %s@,paper:    %s@,measured: %s@,verdict:  %s@]"
    o.id o.title o.paper_says o.measured
    (if o.matches then "REPRODUCED" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* E1-E3: the three safe coupler configurations (Section 5.2). *)

(* Verdict-to-outcome mapping, shared between the sequential checks
   below and the portfolio-scheduled runs of [all_portfolio]: the same
   engine at the same depth must read off identically however it was
   scheduled. *)
let safe_outcome ~id ~title verdict =
  match verdict with
  | Tta_model.Engine.Holds { detail } ->
      {
        id;
        title;
        paper_says = "property holds (verified with SMV)";
        measured = detail;
        matches = true;
      }
  | Tta_model.Engine.Violated { trace; _ } ->
      {
        id;
        title;
        paper_says = "property holds (verified with SMV)";
        measured =
          Printf.sprintf "VIOLATED by a %d-step trace" (Array.length trace);
        matches = false;
      }
  | Tta_model.Engine.Unknown { detail } ->
      { id; title; paper_says = "property holds"; measured = detail;
        matches = false }

(* The BDD engine both proves the safe configurations outright and
   finds shortest counterexamples; [max_depth] bounds its iterations. *)
let check_bdd ~max_depth cfg =
  ((Tta_model.Engine.get Tta_model.Engine.Bdd_reach).Tta_model.Engine.run
     ~max_depth cfg)
    .Tta_model.Engine.verdict

let check_safe ~id ~title ?(depth = 100) cfg =
  safe_outcome ~id ~title (check_bdd ~max_depth:depth cfg)

let e1 ?nodes ?depth () =
  check_safe ~id:"E1" ~title:"passive coupler: no single fault freezes an integrated node"
    ?depth
    (Tta_model.Configs.passive ?nodes ())

let e2 ?nodes ?depth () =
  check_safe ~id:"E2" ~title:"time-windows coupler: property holds" ?depth
    (Tta_model.Configs.time_windows ?nodes ())

let e3 ?nodes ?depth () =
  check_safe ~id:"E3" ~title:"small-shifting coupler: property holds" ?depth
    (Tta_model.Configs.small_shifting ?nodes ())

(* ------------------------------------------------------------------ *)
(* E4/E5: the two counterexamples for full-frame buffering. *)

let unsafe_outcome ~id ~title ~expect verdict =
  match verdict with
  | Tta_model.Engine.Violated { trace; model } ->
      let valid =
        match Symkit.Trace.validate model trace with
        | Ok () -> true
        | Error _ -> false
      in
      {
        id;
        title;
        paper_says = expect;
        measured =
          Printf.sprintf
            "counterexample of %d steps found%s: an out-of-slot replay \
             froze an integrated node"
            (Array.length trace)
            (if valid then " (replays against the model)" else
               " (TRACE INVALID)");
        matches = valid;
      }
  | Tta_model.Engine.Holds { detail } ->
      { id; title; paper_says = expect;
        measured = "no violation found: " ^ detail; matches = false }
  | Tta_model.Engine.Unknown { detail } ->
      { id; title; paper_says = expect; measured = detail; matches = false }

let check_unsafe ~id ~title ~expect ?(depth = 100) cfg =
  unsafe_outcome ~id ~title ~expect (check_bdd ~max_depth:depth cfg)

let e4 ?nodes ?depth () =
  check_unsafe ~id:"E4"
    ~title:"full-shifting coupler: duplicated cold-start frame"
    ~expect:
      "counterexample exists (<=1 out-of-slot error): node frozen by \
       clique avoidance after a cold-start replay"
    ?depth
    (Tta_model.Configs.full_shifting ?nodes ())

let e5 ?nodes ?depth () =
  (* The C-state-duplication failure needs at least three participants
     (at two nodes the configuration is provably safe; see
     EXPERIMENTS.md), so the registry clamps the cluster size. *)
  let nodes = Option.map (max 3) nodes in
  check_unsafe ~id:"E5"
    ~title:"full-shifting coupler: duplicated C-state frame"
    ~expect:
      "counterexample exists even with cold-start duplication prohibited"
    ?depth
    (Tta_model.Configs.full_shifting ?nodes ~forbid_cold_start_duplication:true ())

(* ------------------------------------------------------------------ *)
(* E6: the worked numeric examples of Section 6. *)

let approx_equal ~rel a b = Float.abs (a -. b) <= rel *. Float.abs b

let e6 () =
  let ex = Analysis.Buffer.worked_examples () in
  let expected = [ 115_000.0; 0.3026; 0.0111 ] in
  let rows =
    List.map2
      (fun (e : Analysis.Buffer.worked_example) want ->
        (e.Analysis.Buffer.label, e.Analysis.Buffer.result, want))
      ex expected
  in
  let all_ok =
    List.for_all (fun (_, got, want) -> approx_equal ~rel:0.01 got want) rows
  in
  {
    id = "E6";
    title = "buffer-size equations: worked examples (eqs 6, 8, 9)";
    paper_says = "f_max = 115,000 bits; Delta <= 30.26%; Delta <= 1.11%";
    measured =
      String.concat "; "
        (List.map
           (fun (label, got, _) -> Printf.sprintf "%s = %.6g" label got)
           rows);
    matches = all_ok;
  }

(* ------------------------------------------------------------------ *)
(* E7: Figure 3. *)

let e7 () =
  let families = Analysis.Figure3.default_families () in
  let point128 = Analysis.Figure3.highlighted_point () in
  (* Shape checks: each curve starts high at f_max = f_min and decays
     toward 1 as f_max grows (eq 10), and the paper's highlighted point
     is f_max / 5. *)
  let decreasing_in_f_max (s : Analysis.Figure3.series) =
    let ratios =
      List.filter_map (fun p -> p.Analysis.Figure3.ratio) s.Analysis.Figure3.points
    in
    match ratios with
    | [] -> false
    | _ :: tail ->
        List.for_all2 (fun a b -> a +. 1e-9 >= b) ratios (tail @ [ 1.0 ])
        && List.for_all (fun r -> r >= 1.0) ratios
  in
  let ok_shape = List.for_all decreasing_in_f_max families in
  let ok_point =
    match point128 with
    | Some r -> approx_equal ~rel:0.05 r 25.6
    | None -> false
  in
  {
    id = "E7";
    title = "Figure 3: clock-rate ratio limit vs frame-size range";
    paper_says =
      "feasible region below the curve; at f_min = f_max = 128 the \
       ratio is f_max/5 (~25), not f_max";
    measured =
      Printf.sprintf
        "3 families computed; curves monotone in f_max: %b; ratio(128,128) = %s"
        ok_shape
        (match point128 with
        | Some r -> Printf.sprintf "%.1f" r
        | None -> "infeasible");
    matches = ok_shape && ok_point;
  }

(* ------------------------------------------------------------------ *)
(* E8 (extension): leaky-bucket validation of equation (1). *)

let e8 () =
  let le = Analysis.Frames_catalog.line_encoding_bits in
  let cases =
    [ (1.0, 1.0002, 2076); (1.0002, 1.0, 2076); (1.0, 1.1, 2076);
      (1.0, 1.3026, 76); (1.0, 1.0111, 2076) ]
  in
  let rows =
    List.map
      (fun (node_rate, guardian_rate, frame_bits) ->
        let measured =
          Guardian.Leaky_bucket.required_buffer ~node_rate ~guardian_rate
            ~frame_bits ~le
        in
        let bound =
          Guardian.Leaky_bucket.analytic_bound ~node_rate ~guardian_rate
            ~frame_bits ~le
        in
        (node_rate, guardian_rate, frame_bits, measured, bound))
      cases
  in
  (* The analytic B_min must bound the measured occupancy, and be tight
     to within the one-bit discretization plus the le term. *)
  let ok =
    List.for_all
      (fun (_, _, _, measured, bound) ->
        float_of_int measured <= bound +. 1.0
        && bound <= float_of_int measured +. float_of_int le +. 1.0)
      rows
  in
  {
    id = "E8";
    title = "leaky bucket: measured buffer occupancy vs B_min (eq 1)";
    paper_says = "B_min = le + Delta * f_max bounds the required buffer";
    measured =
      String.concat "; "
        (List.map
           (fun (_, _, f, m, b) ->
             Printf.sprintf "f=%d: measured %d, bound %.1f" f m b)
           rows);
    matches = ok;
  }

(* ------------------------------------------------------------------ *)
(* E10 (extension): the simulator reproduces the failure dynamics. *)

(* The concrete-simulator twin of E4/E5: a single out-of-slot replay
   during a node's (re-)integration window poisons its C-state and gets
   it expelled by clique avoidance; the same injection against a
   passive channel fault is tolerated. *)
let e10 () =
  let open Sim in
  let medl = Ttp.Medl.uniform ~nodes:4 () in
  (* Safe run: time-windows couplers, boot and inject silence; nobody
     freezes. *)
  let safe = Cluster.create ~feature_set:Guardian.Feature_set.Time_windows medl in
  let booted = Cluster.boot safe in
  Cluster.set_coupler_fault safe ~channel:0 Guardian.Fault.Silence;
  Cluster.run safe ~slots:24;
  let safe_freezes = Event_log.freezes (Cluster.log safe) in
  (* Failing run: full-shifting couplers. Take node 3 down and restart
     it so that it enters listen exactly one slot before its own
     (silent) slot; the only integration-capable frame it then sees is
     the coupler's stale replay, whose C-state poisons its timeline. *)
  let unsafe =
    Cluster.create ~feature_set:Guardian.Feature_set.Full_shifting medl
  in
  let booted2 = Cluster.boot unsafe in
  Ttp.Controller.host_freeze (Cluster.controller unsafe 3);
  let timeline_at s c =
    Ttp.Controller.slot (Cluster.controller c 0) = s
    && Ttp.Controller.state (Cluster.controller c 0) = Ttp.Controller.Active
  in
  let aligned = Cluster.run_until unsafe ~max_slots:12 (timeline_at 2) in
  Cluster.start_node unsafe 3;
  Cluster.run unsafe ~slots:1;
  Cluster.set_coupler_fault unsafe ~channel:1 Guardian.Fault.Out_of_slot;
  Cluster.run unsafe ~slots:1;
  Cluster.set_coupler_fault unsafe ~channel:1 Guardian.Fault.Healthy;
  Cluster.run unsafe ~slots:16;
  let clique_freezes =
    List.filter
      (fun (_, _, reason) -> reason = Ttp.Controller.Clique_error)
      (Event_log.freezes (Cluster.log unsafe))
  in
  let ok =
    booted && booted2 && aligned && safe_freezes = [] && clique_freezes <> []
  in
  {
    id = "E10";
    title = "simulator: replay fault freezes a re-integrating node; silence does not";
    paper_says =
      "frame buffering enables out-of-slot replays that defeat \
       integration and freeze healthy nodes; passive channel faults \
       are tolerated";
    measured =
      Printf.sprintf
        "boot ok: %b/%b; freezes with silence fault: %d; clique freezes \
         after a replay hit the integration window: %d"
        booted booted2 (List.length safe_freezes)
        (List.length clique_freezes);
    matches = ok;
  }

(* ------------------------------------------------------------------ *)
(* E18 (extension): guardian design-space synthesis (Section 6 sweep). *)

(* A seeded sample of the Section 6 design space plus the four paper
   anchors, pre-filtered through equations (1)-(10), the survivors
   model-checked on the portfolio pool (lib/synthesis). Reproduced when
   the analytic filter did real work, no checked candidate sits outside
   the envelope, and the Pareto frontier recovers the paper's shape:
   all four feature sets present, passive cheapest, full shifting the
   most capable — and the one the checker breaches. *)
let e18 ?nodes ?depth () =
  (* The sweep multiplies the Section 5 matrix; clamp the cluster size
     so [--all] at paper scale stays within the harness budget. *)
  let nodes = Option.map (min 3) nodes in
  let space = Synthesis.Space.default () in
  let r = Synthesis.run ~seed:18 ~sample:96 ?nodes ?depth space in
  let fs_breached =
    List.exists
      (fun (o : Synthesis.Check.outcome) ->
        o.Synthesis.Check.candidate.Synthesis.Space.feature_set
        = Guardian.Feature_set.Full_shifting
        &&
        match o.Synthesis.Check.verdict with
        | Synthesis.Check.Breached _ -> true
        | _ -> false)
      r.Synthesis.outcomes
  in
  {
    id = "E18";
    title =
      "design-space synthesis: Section 6 sweep recovers the paper's frontier";
    paper_says =
      "the four Section 5 feature sets span the containment/cost \
       tradeoff — a passive hub is cheapest, full shifting contains \
       the most threat classes but adds the replay failure mode — and \
       the Section 6 equations bound which budgets are physically \
       feasible at all";
    measured =
      Printf.sprintf
        "%d candidates: %d rejected by equations (1)-(10), %d survivors, %d \
         checker runs; frontier %d designs over %d feature sets; passive \
         cheapest and full-shifting most capable: %b; full-shifting \
         breached: %b; envelope agreement: %b"
        r.Synthesis.candidates r.Synthesis.rejected r.Synthesis.survivors
        r.Synthesis.checked
        (List.length r.Synthesis.frontier)
        (List.length (Synthesis.frontier_feature_sets r))
        (Synthesis.paper_frontier_ok r)
        fs_breached r.Synthesis.envelope_agreement;
    matches =
      r.Synthesis.rejected > 0 && r.Synthesis.envelope_agreement
      && Synthesis.paper_frontier_ok r && fs_breached;
  }

(* ------------------------------------------------------------------ *)

let quick () = [ e6 (); e7 (); e8 (); e10 () ]

let all ?nodes ?safe_depth ?unsafe_depth () =
  [
    e1 ?nodes ?depth:safe_depth ();
    e2 ?nodes ?depth:safe_depth ();
    e3 ?nodes ?depth:safe_depth ();
    e4 ?nodes ?depth:unsafe_depth ();
    e5 ?nodes ?depth:unsafe_depth ();
  ]
  @ quick ()
  @ [ e18 ?nodes () ]

(* The same E1-E5 registry, but the model-checking runs are scheduled
   by the portfolio pool (and may be served from its verdict cache)
   instead of sequentially. Each job pins the engine and depth the
   sequential path uses, so the outcomes — titles, details, matches —
   are identical; only the scheduling differs. *)
let all_portfolio ?nodes ?(safe_depth = 100) ?(unsafe_depth = 100) ?domains
    ?cache ?telemetry ?obs () =
  let e5_nodes = Option.map (max 3) nodes in
  let bdd = Tta_model.Engine.Bdd_reach in
  let jobs_and_readers =
    [
      ( Portfolio.job ~label:"E1" ~engine:bdd ~max_depth:safe_depth
          (Tta_model.Configs.passive ?nodes ()),
        safe_outcome ~id:"E1"
          ~title:
            "passive coupler: no single fault freezes an integrated node" );
      ( Portfolio.job ~label:"E2" ~engine:bdd ~max_depth:safe_depth
          (Tta_model.Configs.time_windows ?nodes ()),
        safe_outcome ~id:"E2" ~title:"time-windows coupler: property holds" );
      ( Portfolio.job ~label:"E3" ~engine:bdd ~max_depth:safe_depth
          (Tta_model.Configs.small_shifting ?nodes ()),
        safe_outcome ~id:"E3" ~title:"small-shifting coupler: property holds"
      );
      ( Portfolio.job ~label:"E4" ~engine:bdd ~max_depth:unsafe_depth
          (Tta_model.Configs.full_shifting ?nodes ()),
        unsafe_outcome ~id:"E4"
          ~title:"full-shifting coupler: duplicated cold-start frame"
          ~expect:
            "counterexample exists (<=1 out-of-slot error): node frozen by \
             clique avoidance after a cold-start replay" );
      ( Portfolio.job ~label:"E5" ~engine:bdd ~max_depth:unsafe_depth
          (Tta_model.Configs.full_shifting ?nodes:e5_nodes
             ~forbid_cold_start_duplication:true ()),
        unsafe_outcome ~id:"E5"
          ~title:"full-shifting coupler: duplicated C-state frame"
          ~expect:
            "counterexample exists even with cold-start duplication \
             prohibited" );
    ]
  in
  let results =
    Portfolio.run_matrix ?domains ?cache ?telemetry ?obs
      (List.map fst jobs_and_readers)
  in
  List.map2
    (fun (_, read) (_, (r : Portfolio.result)) -> read r.Portfolio.verdict)
    jobs_and_readers results
  @ quick ()
  @ [ e18 ?nodes () ]
