(** Randomized fault-injection campaigns.

    The empirical counterpart of the model-checking results: boot a
    cluster, inject one random coupler fault (respecting the
    single-fault hypothesis), and force one node through a
    re-integration while the fault is active — the paper's analysis
    shows that integration windows are exactly where the extra coupler
    authority turns dangerous. Aggregated over seeded trials this
    reproduces, in simulation, the comparison that Ademaj et al. ran on
    hardware and that the paper settles formally: which coupler feature
    sets let a single coupler fault hurt a healthy node. *)

open Ttp

type outcome = {
  seed : int;
  injected : string;  (** description of the injected fault *)
  healthy_frozen : int;
      (** nodes expelled by clique avoidance although they never failed *)
  cluster_survived : bool;
      (** a majority of nodes still synchronized at the end *)
  integration_blocked : bool;
      (** the restarted healthy node failed to (re-)join the cluster *)
}

type summary = {
  trials : int;
  with_healthy_freeze : int;
  with_cluster_loss : int;
  with_integration_block : int;
}

let summarize outcomes =
  let count f = List.length (List.filter f outcomes) in
  {
    trials = List.length outcomes;
    with_healthy_freeze = count (fun o -> o.healthy_frozen > 0);
    with_cluster_loss = count (fun o -> not o.cluster_survived);
    with_integration_block = count (fun o -> o.integration_blocked);
  }

(* Pick a random coupler fault possible for the feature set (never
   Healthy). *)
let random_coupler_fault rng feature_set =
  let candidates =
    List.filter
      (fun f -> f <> Guardian.Fault.Healthy)
      (Guardian.Fault.possible_for feature_set)
  in
  List.nth candidates (Random.State.int rng (List.length candidates))

(* One trial: boot; take one node down; inject a coupler fault; restart
   the node so it must re-integrate through the faulty period; clear
   the fault and observe the aftermath. *)
let run_trial ~feature_set ~nodes ~seed () =
  let rng = Random.State.make [| seed |] in
  let medl = Medl.uniform ~nodes () in
  let cluster = Cluster.create ~feature_set medl in
  if not (Cluster.boot cluster) then
    (* Startup without faults must succeed; treat failure as a fatal
       harness bug rather than a data point. *)
    invalid_arg "Campaign.run_trial: fault-free startup failed";
  let channel = Random.State.int rng 2 in
  let fault = random_coupler_fault rng feature_set in
  let victim = Random.State.int rng nodes in
  Controller.host_freeze (Cluster.controller cluster victim);
  (* Randomize the phase at which the victim returns. *)
  Cluster.run cluster ~slots:(Random.State.int rng (2 * nodes));
  Cluster.set_coupler_fault cluster ~channel fault;
  Cluster.start_node cluster victim;
  let reintegrated =
    Cluster.run_until cluster ~max_slots:(8 * nodes) (fun c ->
        Controller.is_synchronized (Cluster.controller c victim))
  in
  (* The fault clears (transient fault model); give the cluster time to
     settle, including the victim's first clique checkpoints. *)
  Cluster.set_coupler_fault cluster ~channel Guardian.Fault.Healthy;
  Cluster.run cluster ~slots:(4 * nodes);
  let clique_frozen =
    List.length
      (List.filter
         (fun (_, _, reason) -> reason = Controller.Clique_error)
         (Event_log.freezes (Cluster.log cluster)))
  in
  let victim_ok =
    Controller.is_synchronized (Cluster.controller cluster victim)
  in
  {
    seed;
    injected =
      Printf.sprintf "coupler %d: %s; node %d re-integrating" channel
        (Guardian.Fault.to_string fault)
        victim;
    healthy_frozen = clique_frozen;
    cluster_survived = Cluster.synchronized_count cluster * 2 > nodes;
    integration_blocked = (not reintegrated) || not victim_ok;
  }

let run ?(obs = Obs.disabled) ~feature_set ~nodes ~trials () =
  let trials_c = Obs.counter obs "sim.trials" in
  let freeze_c = Obs.counter obs "sim.trials_with_healthy_freeze" in
  let loss_c = Obs.counter obs "sim.trials_with_cluster_loss" in
  let blocked_c = Obs.counter obs "sim.trials_with_integration_block" in
  List.init trials (fun seed ->
      let o =
        Obs.with_span obs
          ~args:[ ("seed", string_of_int seed) ]
          "sim.trial"
          (fun () -> run_trial ~feature_set ~nodes ~seed ())
      in
      Obs.tick trials_c;
      if o.healthy_frozen > 0 then Obs.tick freeze_c;
      if not o.cluster_survived then Obs.tick loss_c;
      if o.integration_blocked then Obs.tick blocked_c;
      o)
