(** Randomized fault-injection campaigns.

    The empirical counterpart of the model-checking results: boot a
    cluster, inject one random coupler fault (respecting the
    single-fault hypothesis), and force one node through re-integration
    while the fault is active — the paper shows integration windows are
    exactly where extra coupler authority turns dangerous. Trials are
    seeded and reproducible. *)

type outcome = {
  seed : int;
  injected : string;  (** description of the injected fault *)
  healthy_frozen : int;
      (** nodes expelled by clique avoidance although they never failed *)
  cluster_survived : bool;
      (** a majority of nodes still synchronized at the end *)
  integration_blocked : bool;
      (** the restarted healthy node failed to (re-)join the cluster *)
}

type summary = {
  trials : int;
  with_healthy_freeze : int;
  with_cluster_loss : int;
  with_integration_block : int;
}

val summarize : outcome list -> summary

val run_trial :
  feature_set:Guardian.Feature_set.t -> nodes:int -> seed:int -> unit ->
  outcome
(** @raise Invalid_argument if even the fault-free boot fails (a
    harness bug, not a data point). *)

val run :
  ?obs:Obs.t ->
  feature_set:Guardian.Feature_set.t -> nodes:int -> trials:int -> unit ->
  outcome list
(** Seeds 0 .. trials-1. [obs] (default {!Obs.disabled}) receives a
    [sim.trial] span per trial (tagged with its seed) and the campaign
    outcome counters ([sim.trials], [sim.trials_with_healthy_freeze],
    [sim.trials_with_cluster_loss],
    [sim.trials_with_integration_block]). *)
