(* Shared command-line vocabulary — see the interface. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common flag terms *)

let config ?(default = "full-shifting") () =
  Arg.(
    value & opt string default
    & info
        [ "c"; "config"; "f"; "feature-set" ]
        ~docv:"CONFIG"
        ~doc:
          "Star-coupler feature set: passive, time-windows, small-shifting, \
           or full-shifting.")

let engine ?(default = "bmc") () =
  Arg.(
    value & opt string default
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "Verification engine: bdd (reachability), bmc (SAT), induction \
           (SAT k-induction), or explicit (BFS).")

let engines ?(default = "bdd,explicit,induction,bmc") () =
  Arg.(
    value & opt string default
    & info [ "engines" ] ~docv:"LIST"
        ~doc:"Comma-separated engines to race: bdd, bmc, induction, explicit.")

let nodes ?(default = 4) () =
  Arg.(
    value & opt int default
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size (paper: 4).")

let depth ?(default = 24) () =
  Arg.(
    value & opt int default
    & info [ "d"; "depth" ] ~docv:"K"
        ~doc:"Unrolling/iteration bound for the engines.")

let cache_max_entries () =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-entries" ] ~docv:"N"
        ~doc:
          "Cap the persistent verdict cache at N entries; the \
           least-recently-used entries are evicted first. Unbounded when \
           omitted.")

let json () =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the machine-readable results to FILE as JSON.")

let partitioned () =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "partitioned" ]
              ~doc:
                "Compute BDD images over the partitioned transition relation \
                 with early quantification (the default)." );
          ( false,
            info [ "monolithic" ]
              ~doc:
                "Compute BDD images against the monolithic transition \
                 relation (the pre-optimization baseline)." );
        ])

let gc_watermark () =
  Arg.(
    value
    & opt (some int) None
    & info [ "gc-watermark" ] ~docv:"N"
        ~doc:
          "Reclaim dead BDD nodes at fixpoint-iteration boundaries once N \
           nodes were allocated since the last sweep; 0 disables the sweeps. \
           Default: the engine's built-in watermark.")

let no_restrict () =
  Arg.(
    value & flag
    & info [ "no-restrict" ]
        ~doc:
          "Disable Coudert-Madre frontier minimization against the reached \
           set before each BDD image step.")

let reorder () =
  Arg.(
    value
    & opt ~vopt:(Some 50_000) (some int) None
    & info [ "reorder" ] ~docv:"N"
        ~doc:
          "Enable dynamic BDD variable reordering (Rudell sifting) at \
           fixpoint-iteration boundaries once N nodes are live (bare \
           $(b,--reorder) uses 50000). Off when omitted.")

let par_image () =
  Arg.(
    value & opt int 1
    & info [ "par-image" ] ~docv:"N"
        ~doc:
          "Compute each BDD image step across N OCaml domains (the frontier \
           is sliced by state bits; per-domain managers, results merged \
           exactly). 1 (the default) keeps the sequential fold.")

let strategy () =
  Arg.(
    value & opt string "bfs"
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:
          "Fixpoint exploration strategy for the BDD engine: bfs \
           (breadth-first, the default), chaining (image the accumulating \
           reached set), or saturation (guard-local worklist sweeps). All \
           three produce identical verdicts and counterexample lengths.")

let strategy_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "bfs" -> Symkit.Reach.Bfs
  | "chaining" -> Symkit.Reach.Chaining
  | "saturation" -> Symkit.Reach.Saturation
  | _ ->
      prerr_endline
        ("unknown --strategy '" ^ s
       ^ "' (expected bfs | chaining | saturation)");
      exit 2

let reach_tuning_of ?(reorder = None) ?(par_image = 1) ?(strategy = "bfs")
    ~partitioned ~gc_watermark ~no_restrict () =
  let base =
    if partitioned then Symkit.Reach.default_tuning
    else Symkit.Reach.monolithic_tuning
  in
  (match gc_watermark with
  | Some n when n < 0 ->
      prerr_endline "--gc-watermark: expected a non-negative node count";
      exit 2
  | _ -> ());
  (match reorder with
  | Some n when n < 0 ->
      prerr_endline "--reorder: expected a non-negative node count";
      exit 2
  | _ -> ());
  if par_image < 1 then begin
    prerr_endline "--par-image: expected a domain count of at least 1";
    exit 2
  end;
  {
    base with
    Symkit.Reach.use_restrict = base.Symkit.Reach.use_restrict && not no_restrict;
    gc_watermark =
      Option.value gc_watermark ~default:base.Symkit.Reach.gc_watermark;
    strategy = strategy_of_name strategy;
    par_domains = par_image;
    reorder_watermark = Option.value reorder ~default:0;
  }

let chaos () =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SEED[:SPEC]"
        ~doc:
          "Arm deterministic fault injection. SEED is an integer; the \
           optional SPEC is a comma-separated rule list such as \
           'engine_start=crash\\@0.2x4,cache_read=corrupt\\@0.25x4' \
           (points: engine_start, engine_step, cache_read, cache_write, \
           sock_send, sock_recv, link_send, link_recv; actions: crash, \
           corrupt, drop, stallMILLIS, delayMILLIS; \\@P caps the firing \
           probability, xN the total firings). A bare SEED uses a \
           built-in mixed-fault spec. The link_* points fire on the \
           cluster router's per-worker lines (drop loses a line, delay \
           defers it); elsewhere drop behaves as crash and delay as \
           stall.")

(* ------------------------------------------------------------------ *)
(* Uniform parsers *)

let feature_set_of_config s =
  match Guardian.Feature_set.of_string s with
  | Some fs -> fs
  | None ->
      prerr_endline
        ("unknown --config '" ^ s
       ^ "' (expected passive | time-windows | small-shifting | \
          full-shifting)");
      exit 2

let engine_of_name s =
  match Tta_model.Engine.of_string s with
  | Some e -> e
  | None ->
      prerr_endline
        ("unknown --engine '" ^ s
       ^ "' (expected bdd | bmc | induction | explicit)");
      exit 2

let engine_ids_of_names s =
  let parts =
    List.filter
      (fun p -> p <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  let ids = List.map (fun p -> (engine_of_name p).Tta_model.Engine.id) parts in
  if ids = [] then begin
    prerr_endline "--engines: empty engine list";
    exit 2
  end;
  ids

let faults_of_chaos = function
  | None -> Resilience.Faults.disabled
  | Some spec -> (
      match Resilience.Faults.of_spec spec with
      | Ok f -> f
      | Error msg ->
          prerr_endline ("--chaos: " ^ msg);
          exit 2)

(* ------------------------------------------------------------------ *)
(* Observability *)

type obs = {
  trace : string option;
  metrics : bool;
  collector : Obs.Collector.t option;
}

let obs () =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans and metrics and write a Chrome trace_event file \
             on exit (load it in chrome://tracing or Perfetto).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the collected metrics table on exit.")
  in
  let make trace metrics =
    let collector =
      if trace <> None || metrics then Some (Obs.Collector.create ())
      else None
    in
    { trace; metrics; collector }
  in
  Term.(const make $ trace $ metrics)

let obs_collector o = o.collector

let obs_track o name =
  match o.collector with
  | None -> Obs.disabled
  | Some col -> Obs.Collector.track col name

let obs_finish o =
  match o.collector with
  | None -> ()
  | Some col ->
      (match o.trace with
      | Some path ->
          Obs.Collector.write_chrome_trace col path;
          Printf.printf "trace written to %s (chrome://tracing)\n" path
      | None -> ());
      if o.metrics then Format.printf "%a" Obs.Collector.pp_table col

(* ------------------------------------------------------------------ *)
(* JSON output *)

let write_json path j =
  let oc = open_out_bin path in
  output_string oc (Json.to_string ~pretty:true j);
  output_char oc '\n';
  close_out oc
