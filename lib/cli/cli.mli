(** Shared command-line vocabulary for the [bin/] executables.

    One place defines the flag spellings every tool uses — [--config]
    (alias [--feature-set]), [--engine]/[--engines], [--nodes],
    [--depth], [--json], [--trace]/[--metrics] — plus the uniform
    parsers (which exit with code 2 and the same wording everywhere)
    and the observability plumbing that turns [--trace FILE] /
    [--metrics] into an {!Obs.Collector} and exports it on exit. *)

(** {1 Common flag terms} *)

val config : ?default:string -> unit -> string Cmdliner.Term.t
(** [-c]/[--config] (aliases [-f]/[--feature-set]): the star-coupler
    feature set. *)

val engine : ?default:string -> unit -> string Cmdliner.Term.t
(** [-e]/[--engine]: one verification engine ([bdd], [bmc],
    [induction], [explicit], or a long name). *)

val engines : ?default:string -> unit -> string Cmdliner.Term.t
(** [--engines]: a comma-separated engine list (for racing). *)

val nodes : ?default:int -> unit -> int Cmdliner.Term.t
(** [-n]/[--nodes]: cluster size (paper: 4). *)

val depth : ?default:int -> unit -> int Cmdliner.Term.t
(** [-d]/[--depth]: unrolling/iteration bound. *)

val cache_max_entries : unit -> int option Cmdliner.Term.t
(** [--cache-max-entries N]: cap the persistent verdict cache at [N]
    entries (LRU eviction); unbounded when omitted. Pass the result to
    [Portfolio.Cache.create]. *)

val json : unit -> string option Cmdliner.Term.t
(** [--json FILE]: machine-readable output. *)

val partitioned : unit -> bool Cmdliner.Term.t
(** [--partitioned] (default) / [--monolithic]: whether the BDD engine
    folds images over the conjunctively partitioned transition relation
    with early quantification, or uses one monolithic relprod. *)

val gc_watermark : unit -> int option Cmdliner.Term.t
(** [--gc-watermark N]: sweep dead BDD nodes at iteration boundaries
    after [N] allocations ([0] disables); the engine's default when
    omitted. *)

val no_restrict : unit -> bool Cmdliner.Term.t
(** [--no-restrict]: turn off Coudert–Madre frontier minimization. *)

val reorder : unit -> int option Cmdliner.Term.t
(** [--reorder \[N\]]: arm dynamic variable reordering (Rudell sifting)
    at a live-node watermark of [N] (bare [--reorder] uses 50000);
    off when omitted. *)

val par_image : unit -> int Cmdliner.Term.t
(** [--par-image N]: compute each BDD image step across [N] OCaml
    domains ([1], the default, stays sequential). *)

val strategy : unit -> string Cmdliner.Term.t
(** [--strategy bfs|chaining|saturation]: the BDD engine's fixpoint
    exploration strategy (default [bfs]). *)

val strategy_of_name : string -> Symkit.Reach.strategy
(** Parse a [--strategy] value; exits with code 2 on unknown names. *)

val reach_tuning_of :
  ?reorder:int option -> ?par_image:int -> ?strategy:string ->
  partitioned:bool -> gc_watermark:int option -> no_restrict:bool ->
  unit -> Symkit.Reach.tuning
(** Combine the flags into the BDD engine's tuning record (starting
    from {!Symkit.Reach.default_tuning} or
    {!Symkit.Reach.monolithic_tuning} according to [partitioned]).
    Rejects a negative [gc_watermark]/[reorder] or a [par_image]
    below 1 with exit code 2. *)

val chaos : unit -> string option Cmdliner.Term.t
(** [--chaos SEED[:SPEC]]: arm deterministic fault injection (see
    {!Resilience.Faults.of_spec} for the grammar). Parse the result
    with {!faults_of_chaos}. *)

(** {1 Uniform parsers}

    All of these print one standard diagnostic to stderr and [exit 2]
    on unknown input, so every tool rejects a typo identically. *)

val feature_set_of_config : string -> Guardian.Feature_set.t
val engine_of_name : string -> Tta_model.Engine.t
val engine_ids_of_names : string -> Tta_model.Engine.id list
(** Comma-separated, e.g. ["bdd,explicit"]; rejects the empty list. *)

val faults_of_chaos : string option -> Resilience.Faults.t
(** The parsed [--chaos] value as a fault-injection registry;
    {!Resilience.Faults.disabled} when the flag was absent. *)

(** {1 Observability} *)

type obs
(** The tool's observability context: the parsed [--trace]/[--metrics]
    flags and, when either was given, a live collector. *)

val obs : unit -> obs Cmdliner.Term.t
(** [--trace FILE] (write a Chrome [trace_event] file on exit) and
    [--metrics] (print the collected metrics table on exit). *)

val obs_collector : obs -> Obs.Collector.t option
(** [Some] iff [--trace] or [--metrics] was given — pass to
    [Portfolio.race]/[run_matrix]. *)

val obs_track : obs -> string -> Obs.t
(** A named track of the context's collector, or {!Obs.disabled} when
    observability is off — pass to an engine or campaign. *)

val obs_finish : obs -> unit
(** Export: write the Chrome trace (announcing the path on stdout)
    and/or print the metrics table. A no-op when neither flag was
    given — default output stays byte-identical. *)

(** {1 JSON output} *)

val write_json : string -> Json.t -> unit
(** Write pretty-printed JSON plus a trailing newline to a file — the
    one emission path every tool's [--json] uses. *)
