(** Persistent verdict cache for the portfolio.

    Verdicts are keyed by a content hash of the compiled symbolic model
    ({!Symkit.Model.fingerprint}) together with the engine and its
    depth bound, and stored one JSON file per entry under a cache
    directory (default [_cache/]). Re-running the experiment suite or
    the benchmark harness then skips every instance already proved or
    refuted: a warm run is pure file reads.

    Only conclusive verdicts ([Holds]/[Violated]) are stored — an
    [Unknown] could be improved by a later run with a larger bound, so
    caching it would freeze a failure. Counterexample traces are stored
    value-by-value and decoded against the (re-built) model's domains
    on the way out; a corrupt, truncated or mismatched entry degrades
    to a miss, never to a wrong verdict.

    Writes go to a temporary file in the cache directory followed by a
    rename, so concurrent workers (and concurrent processes) never
    observe a half-written entry. *)

type t

val create : ?dir:string -> unit -> t
(** Open (creating if needed) a cache directory; default [_cache]. *)

val dir : t -> string

val key :
  model:Symkit.Model.t -> engine:Tta_model.Runner.engine -> max_depth:int ->
  string
(** The entry key: a hex digest over (model fingerprint, engine,
    depth bound). *)

val lookup :
  t ->
  model:Symkit.Model.t ->
  engine:Tta_model.Runner.engine ->
  max_depth:int ->
  Tta_model.Runner.verdict option
(** [Some verdict] on a hit ([Violated] verdicts carry the supplied
    model and the decoded trace); [None] on a miss. Updates the
    hit/miss counters. *)

val store :
  t ->
  model:Symkit.Model.t ->
  engine:Tta_model.Runner.engine ->
  max_depth:int ->
  Tta_model.Runner.verdict ->
  unit
(** Persist a conclusive verdict; a no-op for [Unknown]. *)

val hits : t -> int
val misses : t -> int

val entries : t -> int
(** Number of entries currently on disk. *)
