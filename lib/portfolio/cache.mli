(** Persistent verdict cache for the portfolio.

    Verdicts are keyed by a content hash of the compiled symbolic model
    ({!Symkit.Model.fingerprint}) together with the engine and its
    depth bound, and stored one JSON file per entry under a cache
    directory (default [_cache/]). Re-running the experiment suite or
    the benchmark harness then skips every instance already proved or
    refuted: a warm run is pure file reads.

    Only conclusive verdicts ([Holds]/[Violated]) are stored — an
    [Unknown] could be improved by a later run with a larger bound, so
    caching it would freeze a failure. Counterexample traces are stored
    value-by-value and decoded against the (re-built) model's domains
    on the way out; a corrupt, truncated or mismatched entry degrades
    to a miss, never to a wrong verdict.

    {b Integrity.} Every entry carries an MD5 checksum over the
    canonical serialization of its payload. An entry whose bytes fail
    verification — unparseable, checksum mismatch, or a legacy
    checksum-less format — is {b quarantined}: renamed aside to
    [<key>.json.quarantined] (kept for post-mortems, invisible to
    {!entries} and {!prune}) and the verdict recomputed, so one
    bit-flip costs one redundant model check, never a wrong answer and
    never a crash. Quarantines are counted ({!quarantined}) and, when
    the cache was created with an [?obs] handle, reported as
    [cache.quarantined] counter increments.

    A {!Resilience.Faults} registry passed at {!create} exercises
    exactly these paths: [Cache_read] crash/corrupt faults turn into
    quarantines, a [Cache_write] crash into a silently skipped
    store.

    Writes go to a temporary file in the cache directory followed by a
    rename, so concurrent workers (and concurrent processes) never
    observe a half-written entry.

    The cache can be bounded: with [max_entries] set, every store
    {!prune}s the directory back down to the cap by deleting the
    least-recently-accessed entries first.

    {b Recency and sharing.} A cache directory may be served by many
    processes at once — the verification cluster points every worker
    daemon at one shared directory so any worker can serve any warm
    verdict. Recency therefore cannot ride on file mtimes alone (their
    1-second granularity makes rapid hits tie, and eviction order then
    degenerates to filename order). Instead the directory keeps an
    explicit access sequence: a monotone counter file ([.access_seq])
    guarded by an advisory [lockf] lock on [.cache.lock]; every hit and
    store draws the next ticket and records it in the entry's sidecar
    file ([<key>.json.seq]). {!prune} orders by ticket (mtime, then
    name, as tiebreaks for ticket-less legacy entries) and also runs
    under the advisory lock so concurrent workers do not double-evict.
    Entry reads stay lock-free; on filesystems without [lockf] the
    cache degrades gracefully to uncoordinated (but still checksummed
    and atomic) operation. *)

type t

val create :
  ?dir:string ->
  ?max_entries:int ->
  ?faults:Resilience.Faults.t ->
  ?obs:Obs.t ->
  unit ->
  t
(** Open (creating if needed) a cache directory; default [_cache].
    [max_entries], if given, caps the number of entries kept on disk
    (see {!prune}). [faults] (default
    {!Resilience.Faults.disabled}) injects storage faults on the
    [Cache_read]/[Cache_write] hook points; [obs] (default
    {!Obs.disabled}) receives [cache.quarantined] counter increments
    and a [cache.quarantine] instant per quarantined entry.
    @raise Invalid_argument if [max_entries < 1]. *)

val dir : t -> string

val max_entries : t -> int option

val key :
  model:Symkit.Model.t -> engine:Tta_model.Engine.id -> max_depth:int ->
  string
(** The entry key: a hex digest over (model fingerprint, engine,
    depth bound). *)

val lookup :
  t ->
  model:Symkit.Model.t ->
  engine:Tta_model.Engine.id ->
  max_depth:int ->
  Tta_model.Engine.verdict option
(** [Some verdict] on a hit ([Violated] verdicts carry the supplied
    model and the decoded trace); [None] on a miss. Updates the
    hit/miss counters. An entry that fails integrity verification is
    quarantined and reported as a miss. *)

val store :
  t ->
  model:Symkit.Model.t ->
  engine:Tta_model.Engine.id ->
  max_depth:int ->
  Tta_model.Engine.verdict ->
  unit
(** Persist a conclusive verdict; a no-op for [Unknown]. When the
    cache is bounded this also {!prune}s, so the cap holds after
    every store. *)

val prune : t -> unit
(** Enforce the [max_entries] cap now: delete entries in access-ticket
    order (oldest first; mtime then filename break ties) until at most
    the cap remain. A no-op for an unbounded cache. Runs under the
    directory's advisory lock; a pruner that still loses a removal
    race counts only the removals it won. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Entries this handle has deleted through {!prune}. *)

val quarantined : t -> int
(** Entries this handle has moved aside after failed integrity
    verification. *)

val entries : t -> int
(** Number of entries currently on disk. *)
