(** Multicore portfolio verification over the paper's configuration
    matrix.

    Two levels of parallelism on OCaml 5 domains:

    - {b engine racing} ({!race}): for a single configuration, the
      complementary engines — BDD fixpoint reachability, SAT BMC, SAT
      k-induction, explicit-state BFS — run as competing workers. The
      first conclusive verdict raises a shared atomic flag; the losers
      poll it inside their main loops (the [?cancel] hooks of
      {!Symkit.Reach}/{!Symkit.Bmc}/{!Symkit.Induction}/
      {!Symkit.Explicit}) and stop cooperatively. No engine dominates
      across safe and unsafe instances, so the race's wall clock is the
      best engine's, not the chosen one's.
    - {b matrix fan-out} ({!run_matrix}): a batch of configurations is
      drained by a work-stealing {!Pool} across
      [Domain.recommended_domain_count ()] workers.

    Both levels consult a persistent {!Cache} keyed on the compiled
    model's content hash and record per-task {!Telemetry}. Passing an
    [?obs] {!Obs.Collector} additionally streams every engine run's
    spans and counters onto its own collector track (named
    ["<label>/<engine>"]) plus a ["pool"] track for the scheduler —
    export it as a Chrome trace to see a race or a whole matrix as
    parallel timelines (see doc/observability.md).

    {b Determinism.} Verdict selection is by the fixed engine
    {!priority}, never by arrival order: when several racers finish
    conclusively near-simultaneously, the reported winner — hence the
    reported proof detail and counterexample — is the highest-priority
    one. All engines are sound and produce minimal-length
    counterexamples on this model family, so the selected verdict is
    reproducible across runs. *)

(** The sibling modules, re-exported (this module shadows the library
    wrapper): *)

module Json = Json
module Pool = Pool
module Cache = Cache
module Telemetry = Telemetry

type engine = Tta_model.Engine.id
type verdict = Tta_model.Engine.verdict

val priority : engine list
(** The fixed tie-breaking order: BDD reachability (proves {e and}
    refutes with shortest traces), explicit BFS (exhaustive, minimal
    traces), k-induction (unbounded proofs), SAT BMC (bounded). *)

val conclusive : verdict -> bool
(** [Holds]/[Violated] are conclusive; [Unknown] is not. *)

val select : (engine * verdict * 'a) list -> (engine * verdict * 'a) option
(** Deterministic winner selection, exposed for the regression test:
    the highest-{!priority} conclusive entry, else the
    highest-priority entry of any kind; [None] on the empty list. The
    input order (= arrival order) never influences the choice. *)

type result = {
  config : Tta_model.Configs.t;
  engine : engine;  (** the engine whose verdict was selected *)
  verdict : verdict;
  wall_s : float;  (** the winner's wall clock (~0 on a cache hit) *)
  cache_hit : bool;
  runs : (engine * verdict * float) list;
      (** every {e completed} engine run of a race in priority order
          (empty on a cache hit or single-engine job; failed engines
          appear in [failures] instead) *)
  failures : (engine * string) list;
      (** engines whose supervised run crashed or hung, in priority
          order, with the supervisor's failure description. When {e
          every} engine failed, [verdict] is an [Unknown] whose detail
          carries this breakdown. *)
}

val all_failed : result -> bool
(** Every engine the run attempted ended in a recorded failure —
    [failures] is non-empty and [runs] is empty. The serving layer
    maps this to a structured [engine_failed] error response. *)

val race :
  ?cancel:(unit -> bool) ->
  ?cache:Cache.t ->
  ?telemetry:Telemetry.t ->
  ?obs:Obs.Collector.t ->
  ?label:string ->
  ?engines:engine list ->
  ?max_depth:int ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  ?reach_tuning:Symkit.Reach.tuning ->
  Tta_model.Configs.t ->
  result
(** Race [engines] (default: all of {!priority}) on one configuration,
    one domain per engine. A conclusive cached verdict short-circuits
    the race entirely (recorded as a [cache.hit] instant on [obs]).
    Each racer writes to its own [obs] track; cancelled losers
    additionally report [race.cancel_latency_us] — the time from the
    winner raising the flag to the loser actually returning.

    Every racer runs under a {!Resilience.Supervisor} with [supervisor]
    (default {!Resilience.Supervisor.default}): an engine that crashes
    is retried per the policy and, if it keeps failing (or hangs past
    the policy's watchdog), becomes an entry in [result.failures] while
    the surviving racers continue. Only when {e all} engines fail does
    the race degrade to an [Unknown] verdict carrying the per-engine
    failure breakdown. [faults] (default {!Resilience.Faults.disabled})
    threads fault injection into every racer and is what the
    [--chaos] CLI flag plugs in.

    [cancel] is an {e external} cooperative-cancellation hook, OR-ed
    into every racer's own hook — the serving layer uses it for
    per-request deadlines and drain. When it fires before any engine
    concluded, the race returns the priority-first inconclusive
    verdict (a BMC partial bound is demoted to [Unknown], exactly as
    for an internal cancellation), and nothing is cached. With a
    single engine the race degenerates to one cancellable run on the
    calling domain — the serving layer's single-engine path.

    [reach_tuning] is forwarded to every racer (only the BDD engine
    consumes it): image-computation strategy, multi-domain image
    parallelism, GC and reordering watermarks.
    @raise Invalid_argument on an empty engine list. *)

(** {1 Matrix fan-out} *)

type job = {
  label : string;
  cfg : Tta_model.Configs.t;
  engine : engine option;  (** [Some e]: run exactly [e] (the sequential
      baseline's engine, so verdicts are comparable); [None]: race *)
  max_depth : int;
}

val job :
  ?label:string -> ?engine:engine -> ?max_depth:int ->
  Tta_model.Configs.t -> job
(** [label] defaults to {!Tta_model.Configs.name}; [max_depth] to 100. *)

val run_matrix :
  ?domains:int ->
  ?cache:Cache.t ->
  ?telemetry:Telemetry.t ->
  ?obs:Obs.Collector.t ->
  ?supervisor:Resilience.Supervisor.policy ->
  ?faults:Resilience.Faults.t ->
  ?reach_tuning:Symkit.Reach.tuning ->
  job list ->
  (job * result) list
(** Drain the jobs across a work-stealing pool of [domains] workers
    (default [Domain.recommended_domain_count ()]); results in job
    order. Racing jobs spawn their engine domains {e in addition} to
    the pool workers — use single-engine jobs when the matrix is wide
    and racing when it is deep. [supervisor]/[faults] apply to every
    job as in {!race} ([reach_tuning] too); a job whose task raised
    outside the supervised
    engine (infrastructure, not verification) still yields a result —
    an [Unknown] with the exception recorded in [failures]. *)

val section5_jobs :
  ?nodes:int -> ?safe_depth:int -> ?unsafe_depth:int -> ?bmc_depth:int ->
  unit -> job list
(** The paper's Section 5 verification matrix as run by the experiment
    registry and benchmark harness: E1-E3 (safe feature sets, BDD
    proofs), E4/E5 (the two full-shifting counterexamples), E9 (the E4
    instance again through SAT BMC). E5 needs at least three nodes and
    clamps accordingly. *)
