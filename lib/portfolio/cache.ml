(* Persistent verdict cache — see the interface for the design. *)

open Symkit

type t = {
  dir : string;
  max_entries : int option;
  faults : Resilience.Faults.t;
  obs : Obs.t;
  lock : Mutex.t;  (** guards the counters; file I/O needs no lock *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quarantined : int;
}

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(dir = "_cache") ?max_entries ?(faults = Resilience.Faults.disabled)
    ?(obs = Obs.disabled) () =
  (match max_entries with
  | Some n when n < 1 -> invalid_arg "Cache.create: max_entries < 1"
  | _ -> ());
  mkdir_p dir;
  { dir; max_entries; faults; obs; lock = Mutex.create (); hits = 0;
    misses = 0; evictions = 0; quarantined = 0 }

let dir t = t.dir
let max_entries t = t.max_entries
let path_of t k = Filename.concat t.dir (k ^ ".json")

(* ------------------------------------------------------------------ *)
(* Shared-directory discipline: advisory lock + access sequence

   Several processes (the cluster's worker daemons) may serve one cache
   directory. Entry files are already safe to share — writes are
   tmp+rename, reads verify a checksum — but recency and eviction need
   coordination: mtime has 1-second granularity, so rapid hits tie and
   eviction order degenerates to filename order. Instead, every hit and
   store draws a ticket from a monotone counter file ([.access_seq],
   guarded by an advisory [lockf] on [.cache.lock]) and records it in a
   per-entry sidecar ([<key>.json.seq]); pruning orders by ticket. The
   lock is advisory and held only for the counter bump and the prune
   scan — entry reads stay lock-free. *)

let lock_path t = Filename.concat t.dir ".cache.lock"
let seq_path t = Filename.concat t.dir ".access_seq"
let sidecar_of t k = path_of t k ^ ".seq"

let rec lockf_retry fd cmd =
  try Unix.lockf fd cmd 0
  with Unix.Unix_error (Unix.EINTR, _, _) -> lockf_retry fd cmd

(* Run [f] under the directory's advisory lock. Lock failure (read-only
   or exotic filesystem) degrades to running unlocked: the cache keeps
   working, only cross-process eviction order gets fuzzier. *)
let with_dir_lock t f =
  match Unix.openfile (lock_path t) [ Unix.O_CREAT; Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try lockf_retry fd Unix.F_LOCK
           with Unix.Unix_error _ -> ());
          Fun.protect
            ~finally:(fun () ->
              try lockf_retry fd Unix.F_ULOCK with Unix.Unix_error _ -> ())
            f)

let read_int_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let r =
        match input_line ic with
        | line -> int_of_string_opt (String.trim line)
        | exception End_of_file -> None
      in
      close_in ic;
      r

let write_int_file path n =
  try
    let oc = open_out_bin path in
    output_string oc (string_of_int n);
    output_char oc '\n';
    close_out oc
  with Sys_error _ -> ()

(* Draw the next access ticket: read-increment-write the shared counter
   under the advisory lock, so tickets are unique across processes. *)
let next_seq t =
  with_dir_lock t (fun () ->
      let n = 1 + Option.value ~default:0 (read_int_file (seq_path t)) in
      write_int_file (seq_path t) n;
      n)

(* Record an access to entry [k]: sidecar ticket plus an mtime touch as
   the fallback order for entries that predate the sidecar. *)
let touch t k =
  write_int_file (sidecar_of t k) (next_seq t);
  try Unix.utimes (path_of t k) 0.0 0.0 with Unix.Unix_error _ -> ()

let key ~model ~engine ~max_depth =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Model.fingerprint model;
            Tta_model.Engine.id_to_string engine;
            string_of_int max_depth;
          ]))

(* ------------------------------------------------------------------ *)
(* Serialization *)

let json_of_state (s : Model.state) =
  Json.List
    (Array.to_list (Array.map (fun v -> Json.String (Expr.value_to_string v)) s))

(* The verdict payload: everything the checksum covers. *)
let payload_of_entry ~model ~engine ~max_depth verdict =
  let base =
    [
      ("fingerprint", Json.String (Model.fingerprint model));
      ("engine", Json.String (Tta_model.Engine.id_to_string engine));
      ("max_depth", Json.Int max_depth);
    ]
  in
  match (verdict : Tta_model.Engine.verdict) with
  | Tta_model.Engine.Holds { detail } ->
      Some
        (Json.Obj
           (base
           @ [ ("verdict", Json.String "holds"); ("detail", Json.String detail) ]
           ))
  | Tta_model.Engine.Violated { trace; _ } ->
      Some
        (Json.Obj
           (base
           @ [
               ("verdict", Json.String "violated");
               ("trace", Json.List (Array.to_list (Array.map json_of_state trace)));
             ]))
  | Tta_model.Engine.Unknown _ -> None

(* The checksum is over the canonical (non-pretty) serialization of the
   payload — strings and ints only, so parse/re-serialize round-trips
   byte-for-byte and the check can be recomputed from the parsed tree. *)
let checksum_of_payload payload =
  Digest.to_hex (Digest.string (Json.to_string payload))

let json_of_entry ~model ~engine ~max_depth verdict =
  Option.map
    (fun payload ->
      Json.Obj
        [
          ("version", Json.Int 2);
          ("checksum", Json.String (checksum_of_payload payload));
          ("payload", payload);
        ])
    (payload_of_entry ~model ~engine ~max_depth verdict)

(* Decode one stored state against the model's declared domains. The
   rendered value strings are unambiguous within a domain (an [Enum]
   never shares a spelling with the [Int]s or [Bool]s of the same
   variable), so matching on [value_to_string] round-trips exactly. *)
let state_of_json model j =
  let rendered = Json.to_list j in
  let vars = model.Model.vars in
  if List.length rendered <> List.length vars then None
  else
    let decoded =
      List.map2
        (fun (_, dom) item ->
          match Json.string_value item with
          | None -> None
          | Some s ->
              List.find_opt
                (fun v -> String.equal (Expr.value_to_string v) s)
                (Model.domain_values dom))
        vars rendered
    in
    if List.exists Option.is_none decoded then None
    else Some (Array.of_list (List.map Option.get decoded))

let entry_to_verdict ~model j : Tta_model.Engine.verdict option =
  match Option.bind (Json.member "verdict" j) Json.string_value with
  | Some "holds" ->
      let detail =
        Option.value ~default:"cached proof"
          (Option.bind (Json.member "detail" j) Json.string_value)
      in
      Some (Tta_model.Engine.Holds { detail })
  | Some "violated" -> (
      match Json.member "trace" j with
      | None -> None
      | Some tr ->
          let states = List.map (state_of_json model) (Json.to_list tr) in
          if states = [] || List.exists Option.is_none states then None
          else
            Some
              (Tta_model.Engine.Violated
                 {
                   trace = Array.of_list (List.map Option.get states);
                   model;
                 }))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lookup and store *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s

let count t hit =
  Mutex.lock t.lock;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  Mutex.unlock t.lock

(* Move a corrupt/unreadable entry aside (never serve it, never let it
   poison a future lookup) and count the quarantine. The .quarantined
   suffix keeps it out of [entries] and [prune] but on disk for a
   post-mortem. *)
let quarantine t k ~reason =
  let path = path_of t k in
  (try Sys.rename path (path ^ ".quarantined")
   with Sys_error _ -> (* already raced away; nothing to preserve *) ());
  (try Sys.remove (sidecar_of t k) with Sys_error _ -> ());
  Mutex.lock t.lock;
  t.quarantined <- t.quarantined + 1;
  Mutex.unlock t.lock;
  if Obs.enabled t.obs then begin
    Obs.incr_by t.obs "cache.quarantined" 1;
    Obs.instant t.obs ~args:[ ("key", k); ("reason", reason) ]
      "cache.quarantine"
  end

(* Verify a raw entry: parse, check the version-2 checksum over the
   canonical payload serialization, and only then look inside.
   [Ok None] is an honest miss (fingerprint mismatch, undecodable
   verdict under a *valid* checksum); [Error reason] means the bytes
   themselves cannot be trusted and the entry must be quarantined.
   Version-1 entries carry no checksum, so they are unverifiable by
   construction and quarantined on first touch. *)
let verdict_of_raw ~model raw =
  match Json.of_string raw with
  | Error e -> Error e
  | Ok j -> (
      match Option.bind (Json.member "version" j) Json.int_value with
      | Some 2 -> (
          match
            ( Option.bind (Json.member "checksum" j) Json.string_value,
              Json.member "payload" j )
          with
          | Some sum, Some payload ->
              if not (String.equal sum (checksum_of_payload payload)) then
                Error "checksum mismatch"
              else
                let fp =
                  Option.bind (Json.member "fingerprint" payload)
                    Json.string_value
                in
                if fp <> Some (Model.fingerprint model) then Ok None
                else Ok (entry_to_verdict ~model payload)
          | _ -> Error "version 2 entry without checksum/payload")
      | Some v -> Error (Printf.sprintf "unverifiable version %d entry" v)
      | None -> Error "entry without version")

let lookup t ~model ~engine ~max_depth =
  let k = key ~model ~engine ~max_depth in
  let verdict =
    let raw =
      match read_file (path_of t k) with
      | None -> None
      | Some raw -> (
          (* Injected faults model storage failures on an existing
             entry: a crash is an unreadable sector (empty read, fails
             verification), a corruption flips a byte of the content. *)
          match
            Resilience.Faults.hit t.faults Resilience.Faults.Cache_read;
            Resilience.Faults.corrupt t.faults Resilience.Faults.Cache_read raw
          with
          | raw -> Some raw
          | exception Resilience.Faults.Injected _ -> Some "")
    in
    match raw with
    | None -> None
    | Some raw -> (
        match verdict_of_raw ~model raw with
        | Ok v -> v
        | Error reason ->
            quarantine t k ~reason;
            None)
  in
  (* LRU touch: a served entry is the one a bounded cache should keep.
     The sidecar ticket gives sub-second-stable recency; failure (entry
     raced away, exotic filesystem) costs nothing. *)
  if Option.is_some verdict then touch t k;
  count t (Option.is_some verdict);
  verdict

(* Drop the least-recently-accessed entries until the count is back
   under the cap. Recency is the sidecar's access ticket (entries
   without one — pre-sidecar stores, crashed writers — sort oldest),
   with mtime then name as deterministic tiebreaks. The scan runs
   under the directory's advisory lock so concurrent cluster workers
   don't double-evict; a lost race on [remove] is still tolerated and
   counted by whoever won it. *)
let prune t =
  match t.max_entries with
  | None -> ()
  | Some cap ->
      with_dir_lock t (fun () ->
          match Sys.readdir t.dir with
          | exception Sys_error _ -> ()
          | files ->
              let dated =
                Array.to_list files
                |> List.filter_map (fun f ->
                       if not (Filename.check_suffix f ".json") then None
                       else
                         let path = Filename.concat t.dir f in
                         match Unix.stat path with
                         | exception Unix.Unix_error _ -> None
                         | st ->
                             let seq =
                               Option.value ~default:0
                                 (read_int_file (path ^ ".seq"))
                             in
                             Some (seq, st.Unix.st_mtime, f))
              in
              let excess = List.length dated - cap in
              if excess > 0 then begin
                let doomed =
                  List.filteri (fun i _ -> i < excess) (List.sort compare dated)
                in
                let removed =
                  List.fold_left
                    (fun acc (_, _, f) ->
                      let path = Filename.concat t.dir f in
                      (try Sys.remove (path ^ ".seq") with Sys_error _ -> ());
                      match Sys.remove path with
                      | () -> acc + 1
                      | exception Sys_error _ -> acc)
                    0 doomed
                in
                Mutex.lock t.lock;
                t.evictions <- t.evictions + removed;
                Mutex.unlock t.lock
              end)

let store t ~model ~engine ~max_depth verdict =
  match json_of_entry ~model ~engine ~max_depth verdict with
  | None -> ()
  | Some j -> (
      match
        Resilience.Faults.hit t.faults Resilience.Faults.Cache_write;
        Resilience.Faults.corrupt t.faults Resilience.Faults.Cache_write
          (Json.to_string ~pretty:true j)
      with
      | exception Resilience.Faults.Injected _ ->
          (* An injected write crash models a failed store: the entry
             simply is not persisted; the verdict was already returned
             to the caller, so correctness is untouched. *)
          ()
      | content ->
          let k = key ~model ~engine ~max_depth in
          let tmp =
            Filename.concat t.dir
              (Printf.sprintf ".%s.%d.%d.tmp" k (Unix.getpid ())
                 (Domain.self () :> int))
          in
          let oc = open_out_bin tmp in
          output_string oc content;
          output_char oc '\n';
          close_out oc;
          Sys.rename tmp (path_of t k);
          touch t k;
          prune t)

let hits t =
  Mutex.lock t.lock;
  let h = t.hits in
  Mutex.unlock t.lock;
  h

let misses t =
  Mutex.lock t.lock;
  let m = t.misses in
  Mutex.unlock t.lock;
  m

let evictions t =
  Mutex.lock t.lock;
  let e = t.evictions in
  Mutex.unlock t.lock;
  e

let quarantined t =
  Mutex.lock t.lock;
  let q = t.quarantined in
  Mutex.unlock t.lock;
  q

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f -> if Filename.check_suffix f ".json" then acc + 1 else acc)
        0 files
