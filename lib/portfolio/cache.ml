(* Persistent verdict cache — see the interface for the design. *)

open Symkit

type t = {
  dir : string;
  max_entries : int option;
  faults : Resilience.Faults.t;
  obs : Obs.t;
  lock : Mutex.t;  (** guards the counters; file I/O needs no lock *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable quarantined : int;
}

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(dir = "_cache") ?max_entries ?(faults = Resilience.Faults.disabled)
    ?(obs = Obs.disabled) () =
  (match max_entries with
  | Some n when n < 1 -> invalid_arg "Cache.create: max_entries < 1"
  | _ -> ());
  mkdir_p dir;
  { dir; max_entries; faults; obs; lock = Mutex.create (); hits = 0;
    misses = 0; evictions = 0; quarantined = 0 }

let dir t = t.dir
let max_entries t = t.max_entries

let key ~model ~engine ~max_depth =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Model.fingerprint model;
            Tta_model.Engine.id_to_string engine;
            string_of_int max_depth;
          ]))

let path_of t k = Filename.concat t.dir (k ^ ".json")

(* ------------------------------------------------------------------ *)
(* Serialization *)

let json_of_state (s : Model.state) =
  Json.List
    (Array.to_list (Array.map (fun v -> Json.String (Expr.value_to_string v)) s))

(* The verdict payload: everything the checksum covers. *)
let payload_of_entry ~model ~engine ~max_depth verdict =
  let base =
    [
      ("fingerprint", Json.String (Model.fingerprint model));
      ("engine", Json.String (Tta_model.Engine.id_to_string engine));
      ("max_depth", Json.Int max_depth);
    ]
  in
  match (verdict : Tta_model.Engine.verdict) with
  | Tta_model.Engine.Holds { detail } ->
      Some
        (Json.Obj
           (base
           @ [ ("verdict", Json.String "holds"); ("detail", Json.String detail) ]
           ))
  | Tta_model.Engine.Violated { trace; _ } ->
      Some
        (Json.Obj
           (base
           @ [
               ("verdict", Json.String "violated");
               ("trace", Json.List (Array.to_list (Array.map json_of_state trace)));
             ]))
  | Tta_model.Engine.Unknown _ -> None

(* The checksum is over the canonical (non-pretty) serialization of the
   payload — strings and ints only, so parse/re-serialize round-trips
   byte-for-byte and the check can be recomputed from the parsed tree. *)
let checksum_of_payload payload =
  Digest.to_hex (Digest.string (Json.to_string payload))

let json_of_entry ~model ~engine ~max_depth verdict =
  Option.map
    (fun payload ->
      Json.Obj
        [
          ("version", Json.Int 2);
          ("checksum", Json.String (checksum_of_payload payload));
          ("payload", payload);
        ])
    (payload_of_entry ~model ~engine ~max_depth verdict)

(* Decode one stored state against the model's declared domains. The
   rendered value strings are unambiguous within a domain (an [Enum]
   never shares a spelling with the [Int]s or [Bool]s of the same
   variable), so matching on [value_to_string] round-trips exactly. *)
let state_of_json model j =
  let rendered = Json.to_list j in
  let vars = model.Model.vars in
  if List.length rendered <> List.length vars then None
  else
    let decoded =
      List.map2
        (fun (_, dom) item ->
          match Json.string_value item with
          | None -> None
          | Some s ->
              List.find_opt
                (fun v -> String.equal (Expr.value_to_string v) s)
                (Model.domain_values dom))
        vars rendered
    in
    if List.exists Option.is_none decoded then None
    else Some (Array.of_list (List.map Option.get decoded))

let entry_to_verdict ~model j : Tta_model.Engine.verdict option =
  match Option.bind (Json.member "verdict" j) Json.string_value with
  | Some "holds" ->
      let detail =
        Option.value ~default:"cached proof"
          (Option.bind (Json.member "detail" j) Json.string_value)
      in
      Some (Tta_model.Engine.Holds { detail })
  | Some "violated" -> (
      match Json.member "trace" j with
      | None -> None
      | Some tr ->
          let states = List.map (state_of_json model) (Json.to_list tr) in
          if states = [] || List.exists Option.is_none states then None
          else
            Some
              (Tta_model.Engine.Violated
                 {
                   trace = Array.of_list (List.map Option.get states);
                   model;
                 }))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lookup and store *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s

let count t hit =
  Mutex.lock t.lock;
  if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1;
  Mutex.unlock t.lock

(* Move a corrupt/unreadable entry aside (never serve it, never let it
   poison a future lookup) and count the quarantine. The .quarantined
   suffix keeps it out of [entries] and [prune] but on disk for a
   post-mortem. *)
let quarantine t k ~reason =
  let path = path_of t k in
  (try Sys.rename path (path ^ ".quarantined")
   with Sys_error _ -> (* already raced away; nothing to preserve *) ());
  Mutex.lock t.lock;
  t.quarantined <- t.quarantined + 1;
  Mutex.unlock t.lock;
  if Obs.enabled t.obs then begin
    Obs.incr_by t.obs "cache.quarantined" 1;
    Obs.instant t.obs ~args:[ ("key", k); ("reason", reason) ]
      "cache.quarantine"
  end

(* Verify a raw entry: parse, check the version-2 checksum over the
   canonical payload serialization, and only then look inside.
   [Ok None] is an honest miss (fingerprint mismatch, undecodable
   verdict under a *valid* checksum); [Error reason] means the bytes
   themselves cannot be trusted and the entry must be quarantined.
   Version-1 entries carry no checksum, so they are unverifiable by
   construction and quarantined on first touch. *)
let verdict_of_raw ~model raw =
  match Json.of_string raw with
  | Error e -> Error e
  | Ok j -> (
      match Option.bind (Json.member "version" j) Json.int_value with
      | Some 2 -> (
          match
            ( Option.bind (Json.member "checksum" j) Json.string_value,
              Json.member "payload" j )
          with
          | Some sum, Some payload ->
              if not (String.equal sum (checksum_of_payload payload)) then
                Error "checksum mismatch"
              else
                let fp =
                  Option.bind (Json.member "fingerprint" payload)
                    Json.string_value
                in
                if fp <> Some (Model.fingerprint model) then Ok None
                else Ok (entry_to_verdict ~model payload)
          | _ -> Error "version 2 entry without checksum/payload")
      | Some v -> Error (Printf.sprintf "unverifiable version %d entry" v)
      | None -> Error "entry without version")

let lookup t ~model ~engine ~max_depth =
  let k = key ~model ~engine ~max_depth in
  let verdict =
    let raw =
      match read_file (path_of t k) with
      | None -> None
      | Some raw -> (
          (* Injected faults model storage failures on an existing
             entry: a crash is an unreadable sector (empty read, fails
             verification), a corruption flips a byte of the content. *)
          match
            Resilience.Faults.hit t.faults Resilience.Faults.Cache_read;
            Resilience.Faults.corrupt t.faults Resilience.Faults.Cache_read raw
          with
          | raw -> Some raw
          | exception Resilience.Faults.Injected _ -> Some "")
    in
    match raw with
    | None -> None
    | Some raw -> (
        match verdict_of_raw ~model raw with
        | Ok v -> v
        | Error reason ->
            quarantine t k ~reason;
            None)
  in
  (* LRU touch: a served entry is the one a bounded cache should keep.
     Failure (entry raced away, exotic filesystem) costs nothing. *)
  (if Option.is_some verdict then
     try Unix.utimes (path_of t k) 0.0 0.0 with Unix.Unix_error _ -> ());
  count t (Option.is_some verdict);
  verdict

(* Drop the oldest-mtime entries until the count is back under the cap.
   Concurrent workers may prune the same files; a lost race on [remove]
   is counted by whoever won it. Sorting secondarily by name keeps the
   order deterministic when mtimes collide. *)
let prune t =
  match t.max_entries with
  | None -> ()
  | Some cap -> (
      match Sys.readdir t.dir with
      | exception Sys_error _ -> ()
      | files ->
          let dated =
            Array.to_list files
            |> List.filter_map (fun f ->
                   if not (Filename.check_suffix f ".json") then None
                   else
                     match Unix.stat (Filename.concat t.dir f) with
                     | exception Unix.Unix_error _ -> None
                     | st -> Some (st.Unix.st_mtime, f))
          in
          let excess = List.length dated - cap in
          if excess > 0 then begin
            let doomed =
              List.filteri (fun i _ -> i < excess) (List.sort compare dated)
            in
            let removed =
              List.fold_left
                (fun acc (_, f) ->
                  match Sys.remove (Filename.concat t.dir f) with
                  | () -> acc + 1
                  | exception Sys_error _ -> acc)
                0 doomed
            in
            Mutex.lock t.lock;
            t.evictions <- t.evictions + removed;
            Mutex.unlock t.lock
          end)

let store t ~model ~engine ~max_depth verdict =
  match json_of_entry ~model ~engine ~max_depth verdict with
  | None -> ()
  | Some j -> (
      match
        Resilience.Faults.hit t.faults Resilience.Faults.Cache_write;
        Resilience.Faults.corrupt t.faults Resilience.Faults.Cache_write
          (Json.to_string ~pretty:true j)
      with
      | exception Resilience.Faults.Injected _ ->
          (* An injected write crash models a failed store: the entry
             simply is not persisted; the verdict was already returned
             to the caller, so correctness is untouched. *)
          ()
      | content ->
          let k = key ~model ~engine ~max_depth in
          let tmp =
            Filename.concat t.dir
              (Printf.sprintf ".%s.%d.%d.tmp" k (Unix.getpid ())
                 (Domain.self () :> int))
          in
          let oc = open_out_bin tmp in
          output_string oc content;
          output_char oc '\n';
          close_out oc;
          Sys.rename tmp (path_of t k);
          prune t)

let hits t =
  Mutex.lock t.lock;
  let h = t.hits in
  Mutex.unlock t.lock;
  h

let misses t =
  Mutex.lock t.lock;
  let m = t.misses in
  Mutex.unlock t.lock;
  m

let evictions t =
  Mutex.lock t.lock;
  let e = t.evictions in
  Mutex.unlock t.lock;
  e

let quarantined t =
  Mutex.lock t.lock;
  let q = t.quarantined in
  Mutex.unlock t.lock;
  q

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> 0
  | files ->
      Array.fold_left
        (fun acc f -> if Filename.check_suffix f ".json" then acc + 1 else acc)
        0 files
