(* Multicore portfolio verification — see the interface for the
   design overview. *)

(* portfolio.ml shadows the library wrapper, so the sibling modules
   must be re-exported to be reachable from outside the library. *)
module Json = Json
module Pool = Pool
module Cache = Cache
module Telemetry = Telemetry

open Tta_model

type engine = Engine.id
type verdict = Engine.verdict

let priority =
  [ Engine.Bdd_reach; Engine.Explicit_bfs; Engine.Sat_induction;
    Engine.Sat_bmc ]

let conclusive = function
  | Engine.Holds _ | Engine.Violated _ -> true
  | Engine.Unknown _ -> false

(* Deterministic selection: scan the fixed priority list, never the
   arrival order. Engines outside [priority] (impossible today) would
   be considered last, in their arrival order, rather than dropped. *)
let select results =
  let by_engine e =
    List.find_opt (fun (e', _, _) -> e' = e) results
  in
  let in_priority (e, _, _) = List.mem e priority in
  let ordered =
    List.filter_map by_engine priority
    @ List.filter (fun r -> not (in_priority r)) results
  in
  match List.find_opt (fun (_, v, _) -> conclusive v) ordered with
  | Some r -> Some r
  | None -> ( match ordered with [] -> None | r :: _ -> Some r)

type result = {
  config : Configs.t;
  engine : engine;
  verdict : verdict;
  wall_s : float;
  cache_hit : bool;
  runs : (engine * verdict * float) list;
  failures : (engine * string) list;
}

let now () = Unix.gettimeofday ()

let add_telemetry telemetry ~label ~engine ~verdict ~detail ~wall_s ~cache_hit
    ~winner ~counters =
  match telemetry with
  | None -> ()
  | Some t ->
      Telemetry.add t
        {
          Telemetry.config = label;
          engine = Engine.id_to_string engine;
          outcome = Telemetry.outcome_of_verdict verdict;
          detail;
          wall_s;
          cache_hit;
          winner;
          counters;
        }

let detail_of = function
  | Engine.Holds { detail } -> detail
  | Engine.Unknown { detail } -> detail
  | Engine.Violated { trace; _ } ->
      Printf.sprintf "counterexample of %d steps" (Array.length trace)

(* One observability track per engine run, named after the job and the
   engine so the Chrome trace shows the race as parallel timelines. *)
let run_track obs ~label engine =
  match obs with
  | None -> Obs.disabled
  | Some col ->
      Obs.Collector.track col (label ^ "/" ^ Engine.id_to_string engine)

(* Conclusive cached verdict for any of [engines], in priority-filtered
   order. *)
let cache_probe cache ~model ~engines ~max_depth =
  match cache with
  | None -> None
  | Some c ->
      List.find_map
        (fun e ->
          match Cache.lookup c ~model ~engine:e ~max_depth with
          | Some v when conclusive v -> Some (e, v)
          | _ -> None)
        engines

let cache_store cache ~model ~engine ~max_depth verdict =
  match cache with
  | None -> ()
  | Some c ->
      if conclusive verdict then
        Cache.store c ~model ~engine ~max_depth verdict

let note_cache_hit obs ~label engine =
  match obs with
  | None -> ()
  | Some col ->
      let tr = Obs.Collector.track col (label ^ "/cache") in
      Obs.instant tr
        ~args:[ ("engine", Engine.id_to_string engine) ]
        "cache.hit";
      Obs.incr_by tr "cache.hits" 1

(* ------------------------------------------------------------------ *)
(* Engine racing *)

(* Engine-track counters already include the supervisor's live ticks
   when the track is enabled; merging by name keeps the supervisor's
   totals present without double counting either way. *)
let merge_counters engine_counters supervisor_counters =
  engine_counters
  @ List.filter
      (fun (n, _) -> not (List.mem_assoc n engine_counters))
      supervisor_counters

let all_failed r = r.failures <> [] && r.runs = []

let all_failed_detail failures =
  "all engines failed — "
  ^ String.concat "; "
      (List.map
         (fun (e, msg) -> Engine.id_to_string e ^ ": " ^ msg)
         failures)

let race ?cancel ?cache ?telemetry ?obs ?label ?(engines = priority)
    ?(max_depth = 24) ?(supervisor = Resilience.Supervisor.default)
    ?(faults = Resilience.Faults.disabled) ?reach_tuning cfg =
  if engines = [] then invalid_arg "Portfolio.race: no engines";
  let ext_cancel = match cancel with Some c -> c | None -> fun () -> false in
  let label =
    match label with Some l -> l | None -> Configs.name cfg
  in
  let model = Build.model cfg in
  let t0 = now () in
  match cache_probe cache ~model ~engines ~max_depth with
  | Some (e, v) ->
      let wall_s = now () -. t0 in
      note_cache_hit obs ~label e;
      add_telemetry telemetry ~label ~engine:e ~verdict:v
        ~detail:(detail_of v) ~wall_s ~cache_hit:true ~winner:true
        ~counters:[];
      { config = cfg; engine = e; verdict = v; wall_s; cache_hit = true;
        runs = []; failures = [] }
  | None ->
      let flag = Atomic.make false in
      (* Wall time at which the first conclusive verdict raised the
         flag — written once, read by the cancelled losers to report
         how long cancellation took to take effect. *)
      let flag_at = Atomic.make 0.0 in
      let run_engine e =
        let track = run_track obs ~label e in
        let observed = ref false in
        (* [observed] records the race's own flag; [externally] the
           caller's [?cancel] hook (a service deadline, a drain). Both
           stop the engine; only the former feeds the latency metric,
           whose reference point is the winner raising the flag. *)
        let externally = ref false in
        let cancel () =
          let c = Atomic.get flag in
          if c then observed := true;
          let e = ext_cancel () in
          if e then externally := true;
          c || e
        in
        let t0 = now () in
        let o =
          Resilience.Supervisor.run ~policy:supervisor ~faults ~obs:track
            ~cancel ~max_depth ?reach_tuning (Engine.get e) cfg
        in
        let wall = now () -. t0 in
        match o.Resilience.Supervisor.result with
        | Error f ->
            (* A crashed or hung engine is a recorded failure, not a
               race abort: the surviving racers keep running. *)
            let msg = Resilience.Supervisor.failure_to_string f in
            Obs.instant track ~args:[ ("failure", msg) ] "engine.failed";
            (e, Error msg, o.Resilience.Supervisor.counters, wall)
        | Ok r ->
            (* A cancelled BMC run reports the bounded no-counterexample
               claim of its last completed depth; inside the race that
               must not pass for the full-bound verdict. Proofs (BDD
               fixpoint, k-induction, exhausted BFS) and counterexamples
               remain sound whether or not the flag fired mid-run. *)
            let v =
              match r.Engine.verdict with
              | Engine.Holds _
                when (!observed || !externally) && e = Engine.Sat_bmc ->
                  Engine.Unknown
                    { detail = "cancelled before completing the bound" }
              | v -> v
            in
            if conclusive v then begin
              let first = not (Atomic.exchange flag true) in
              if first then Atomic.set flag_at (now ())
            end;
            if !observed then begin
              let latency_us =
                int_of_float ((now () -. Atomic.get flag_at) *. 1e6)
              in
              Obs.set_max track "race.cancel_latency_us" (max 0 latency_us);
              Obs.instant track "race.cancelled"
            end;
            ( e,
              Ok v,
              merge_counters r.Engine.counters
                o.Resilience.Supervisor.counters,
              wall )
      in
      let spawned =
        List.map
          (fun e -> Domain.spawn (fun () -> run_engine e))
          (List.tl engines)
      in
      (* The head engine runs on the calling domain. Bind it before the
         joins: [hd :: List.map Domain.join spawned] would evaluate the
         joins first (right-to-left), so the inline engine would only
         start after every spawned one finished — with the cancel flag
         already raised. *)
      let head_result = run_engine (List.hd engines) in
      let results = head_result :: List.map Domain.join spawned in
      let failures =
        List.filter_map
          (fun e ->
            List.find_map
              (function
                | e', Error msg, _, _ when e' = e -> Some (e', msg)
                | _ -> None)
              results)
          priority
      in
      (* Reorder the arrivals into priority order once; selection and
         reporting are then independent of the finishing schedule. *)
      let keyed =
        List.filter_map
          (function e, Ok v, _, w -> Some (e, v, w) | _, Error _, _, _ -> None)
          results
      in
      let winner_e, winner_v, winner_wall =
        match select keyed with
        | Some r -> r
        | None ->
            (* Every engine failed: degrade to an explicit Unknown that
               names each failure, attributed to the highest-priority
               engine that was asked. *)
            let e =
              match List.find_opt (fun e -> List.mem e engines) priority with
              | Some e -> e
              | None -> List.hd engines
            in
            (e, Engine.Unknown { detail = all_failed_detail failures },
             now () -. t0)
      in
      cache_store cache ~model ~engine:winner_e ~max_depth winner_v;
      List.iter
        (fun (e, outcome, counters, wall) ->
          let v =
            match outcome with
            | Ok v -> v
            | Error msg -> Engine.Unknown { detail = "engine failed: " ^ msg }
          in
          add_telemetry telemetry ~label ~engine:e ~verdict:v
            ~detail:(detail_of v) ~wall_s:wall ~cache_hit:false
            ~winner:(e = winner_e && keyed <> []) ~counters)
        results;
      let runs =
        List.filter_map
          (fun e ->
            List.find_map
              (function
                | e', Ok v, _, w when e' = e -> Some (e', v, w)
                | _ -> None)
              results)
          priority
      in
      {
        config = cfg;
        engine = winner_e;
        verdict = winner_v;
        wall_s = winner_wall;
        cache_hit = false;
        runs;
        failures;
      }

(* ------------------------------------------------------------------ *)
(* Matrix fan-out *)

type job = {
  label : string;
  cfg : Configs.t;
  engine : engine option;
  max_depth : int;
}

let job ?label ?engine ?(max_depth = 100) cfg =
  let label = match label with Some l -> l | None -> Configs.name cfg in
  { label; cfg; engine; max_depth }

let run_single ?cache ?telemetry ?obs
    ?(supervisor = Resilience.Supervisor.default)
    ?(faults = Resilience.Faults.disabled) ?reach_tuning ~label ~engine
    ~max_depth cfg =
  let model = Build.model cfg in
  let t0 = now () in
  match cache_probe cache ~model ~engines:[ engine ] ~max_depth with
  | Some (e, v) ->
      let wall_s = now () -. t0 in
      note_cache_hit obs ~label e;
      add_telemetry telemetry ~label ~engine:e ~verdict:v
        ~detail:(detail_of v) ~wall_s ~cache_hit:true ~winner:true
        ~counters:[];
      { config = cfg; engine = e; verdict = v; wall_s; cache_hit = true;
        runs = []; failures = [] }
  | None ->
      let track = run_track obs ~label engine in
      let o =
        Resilience.Supervisor.run ~policy:supervisor ~faults ~obs:track
          ~max_depth ?reach_tuning (Engine.get engine) cfg
      in
      let wall_s = now () -. t0 in
      let v, counters, failures =
        match o.Resilience.Supervisor.result with
        | Ok r ->
            ( r.Engine.verdict,
              merge_counters r.Engine.counters o.Resilience.Supervisor.counters,
              [] )
        | Error f ->
            let msg = Resilience.Supervisor.failure_to_string f in
            Obs.instant track ~args:[ ("failure", msg) ] "engine.failed";
            ( Engine.Unknown { detail = "engine failed: " ^ msg },
              o.Resilience.Supervisor.counters,
              [ (engine, msg) ] )
      in
      cache_store cache ~model ~engine ~max_depth v;
      add_telemetry telemetry ~label ~engine ~verdict:v ~detail:(detail_of v)
        ~wall_s ~cache_hit:false ~winner:(failures = []) ~counters;
      { config = cfg; engine; verdict = v; wall_s; cache_hit = false;
        runs = (if failures = [] then [ (engine, v, wall_s) ] else []);
        failures }

let run_matrix ?domains ?cache ?telemetry ?obs ?supervisor ?faults
    ?reach_tuning jobs =
  let run j =
    match j.engine with
    | Some engine ->
        ( j,
          run_single ?cache ?telemetry ?obs ?supervisor ?faults ?reach_tuning
            ~label:j.label ~engine ~max_depth:j.max_depth j.cfg )
    | None ->
        ( j,
          race ?cache ?telemetry ?obs ?supervisor ?faults ?reach_tuning
            ~label:j.label ~max_depth:j.max_depth j.cfg )
  in
  let pool_obs =
    match obs with
    | None -> Obs.disabled
    | Some col -> Obs.Collector.track col "pool"
  in
  (* Supervision makes [run] total in practice; a residual pool-level
     exception (infrastructure, not an engine) still must not strand
     the batch, so it degrades to a failed result for its own job. *)
  List.map2
    (fun j -> function
      | Ok jr -> jr
      | Error exn ->
          let msg = "task failed: " ^ Printexc.to_string exn in
          let engine =
            match j.engine with Some e -> e | None -> List.hd priority
          in
          ( j,
            {
              config = j.cfg;
              engine;
              verdict = Engine.Unknown { detail = msg };
              wall_s = 0.0;
              cache_hit = false;
              runs = [];
              failures = [ (engine, msg) ];
            } ))
    jobs
    (Pool.map ?domains ~obs:pool_obs run jobs)

(* ------------------------------------------------------------------ *)
(* The Section 5 matrix *)

let section5_jobs ?(nodes = Configs.default_nodes) ?(safe_depth = 100)
    ?(unsafe_depth = 100) ?bmc_depth () =
  let bmc_depth =
    match bmc_depth with
    | Some d -> d
    | None -> if nodes >= 4 then 16 else 14
  in
  let bdd = Engine.Bdd_reach in
  [
    job ~label:"E1 passive" ~engine:bdd ~max_depth:safe_depth
      (Configs.passive ~nodes ());
    job ~label:"E2 time-windows" ~engine:bdd ~max_depth:safe_depth
      (Configs.time_windows ~nodes ());
    job ~label:"E3 small-shifting" ~engine:bdd ~max_depth:safe_depth
      (Configs.small_shifting ~nodes ());
    job ~label:"E4 full-shifting (dup cold start)" ~engine:bdd
      ~max_depth:unsafe_depth
      (Configs.full_shifting ~nodes ());
    (* The C-state-duplication failure needs at least three
       participants (see EXPERIMENTS.md), hence the clamp. *)
    job ~label:"E5 full-shifting (dup C-state)" ~engine:bdd
      ~max_depth:unsafe_depth
      (Configs.full_shifting ~nodes:(max 3 nodes)
         ~forbid_cold_start_duplication:true ());
    job ~label:"E9 full-shifting via SAT BMC" ~engine:Engine.Sat_bmc
      ~max_depth:bmc_depth
      (Configs.full_shifting ~nodes ());
  ]
