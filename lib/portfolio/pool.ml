(* A work-stealing pool over OCaml 5 domains — see the interface. *)

let default_domains () = Domain.recommended_domain_count ()

(* Each worker owns a deque of task indices guarded by a mutex: cheap
   and contention-free enough here, where a task is a whole model-check
   run (milliseconds to minutes) and the deque operations are
   nanoseconds. Owners pop from the front; thieves steal from the
   back, so a stolen task is the one the owner would have reached
   last. *)
type deques = {
  queues : int list ref array;
  locks : Mutex.t array;
}

let pop d w =
  Mutex.lock d.locks.(w);
  let r =
    match !(d.queues.(w)) with
    | [] -> None
    | i :: rest ->
        d.queues.(w) := rest;
        Some i
  in
  Mutex.unlock d.locks.(w);
  r

let steal d w =
  let k = Array.length d.queues in
  let found = ref None in
  let j = ref 1 in
  while !found = None && !j < k do
    let v = (w + !j) mod k in
    Mutex.lock d.locks.(v);
    (match List.rev !(d.queues.(v)) with
    | [] -> ()
    | last :: rev_front ->
        d.queues.(v) := List.rev rev_front;
        found := Some last);
    Mutex.unlock d.locks.(v);
    incr j
  done;
  !found

let map ?domains ?(obs = Obs.disabled) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let workers =
      let d =
        match domains with Some d -> d | None -> default_domains ()
      in
      max 1 (min d n)
    in
    let tasks_c = Obs.counter obs "pool.tasks" in
    let steals_c = Obs.counter obs "pool.steals" in
    let wait_c = Obs.counter obs "pool.task_wait_us" in
    (* High-water mark of a worker's deque: with round-robin
       distribution that is worker 0's initial share. *)
    Obs.set_max obs "pool.queue_depth" ((n + workers - 1) / workers);
    Obs.set_max obs "pool.workers" workers;
    let t0 = if Obs.enabled obs then Unix.gettimeofday () else 0.0 in
    let d =
      {
        queues = Array.init workers (fun _ -> ref []);
        locks = Array.init workers (fun _ -> Mutex.create ());
      }
    in
    (* Round-robin distribution, pushed in reverse so each worker pops
       its share in input order. *)
    for i = n - 1 downto 0 do
      let q = d.queues.(i mod workers) in
      q := i :: !q
    done;
    let results = Array.make n None in
    let rec worker w =
      let next =
        match pop d w with
        | Some i -> Some i
        | None ->
            let s = steal d w in
            if s <> None then Obs.tick steals_c;
            s
      in
      match next with
      | None -> ()
      | Some i ->
          Obs.tick tasks_c;
          (* Queued time of this task: the pool starts all deques full,
             so waiting began at [t0]. *)
          if Obs.enabled obs then
            Obs.add wait_c
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
          results.(i) <-
            Some (match f arr.(i) with r -> Ok r | exception e -> Error e);
          worker w
    in
    let spawned =
      List.init (workers - 1) (fun k ->
          Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None ->
             (* Unreachable: the fixed task set is fully drained before
                the workers exit. *)
             assert false)
  end

let map_exn ?domains ?obs f items =
  map ?domains ?obs f items
  |> List.map (function Ok r -> r | Error e -> raise e)
