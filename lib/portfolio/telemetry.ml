(* Run telemetry — see the interface. *)

type outcome = Holds | Violated | Unknown

let outcome_of_verdict = function
  | Tta_model.Engine.Holds _ -> Holds
  | Tta_model.Engine.Violated _ -> Violated
  | Tta_model.Engine.Unknown _ -> Unknown

let outcome_to_string = function
  | Holds -> "holds"
  | Violated -> "violated"
  | Unknown -> "unknown"

type record = {
  config : string;
  engine : string;
  outcome : outcome;
  detail : string;
  wall_s : float;
  cache_hit : bool;
  winner : bool;
  counters : (string * int) list;
}

type t = { lock : Mutex.t; mutable rev_records : record list }

let create () = { lock = Mutex.create (); rev_records = [] }

let add t r =
  Mutex.lock t.lock;
  t.rev_records <- r :: t.rev_records;
  Mutex.unlock t.lock

let records t =
  Mutex.lock t.lock;
  let rs = List.rev t.rev_records in
  Mutex.unlock t.lock;
  rs

type summary = {
  tasks : int;
  runs : int;
  holds : int;
  violated : int;
  unknown : int;
  cache_hits : int;
  total_wall_s : float;
  total_run_wall_s : float;
  max_wall_s : float;
}

let summarize t =
  let rs = records t in
  let winners = List.filter (fun r -> r.winner) rs in
  let count p l = List.length (List.filter p l) in
  {
    tasks = List.length winners;
    runs = List.length rs;
    holds = count (fun r -> r.outcome = Holds) winners;
    violated = count (fun r -> r.outcome = Violated) winners;
    unknown = count (fun r -> r.outcome = Unknown) winners;
    cache_hits = count (fun r -> r.cache_hit) rs;
    total_wall_s =
      List.fold_left (fun acc r -> acc +. r.wall_s) 0.0 winners;
    total_run_wall_s = List.fold_left (fun acc r -> acc +. r.wall_s) 0.0 rs;
    max_wall_s = List.fold_left (fun acc r -> Float.max acc r.wall_s) 0.0 rs;
  }

(* The effort column: the run's most characteristic counter, tried in
   engine-specificity order so each engine shows the number a reader
   would reach for first. *)
let effort_of_counters counters =
  let get n = List.assoc_opt n counters in
  match
    List.find_map
      (fun (name, unit_) ->
        Option.map (fun v -> (v, unit_)) (get name))
      [
        ("reach.peak_nodes", "bddn");
        ("sat.conflicts", "cfl");
        ("explicit.states", "sts");
        ("sim.trials", "trl");
      ]
  with
  | Some (v, unit_) -> Printf.sprintf "%d %s" v unit_
  | None -> "-"

let pp_table ppf t =
  let rs = records t in
  Format.fprintf ppf "  %-36s %-16s %-9s %8s %6s %3s %12s@."
    "configuration" "engine" "outcome" "wall" "cache" "win" "effort";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-36s %-16s %-9s %7.2fs %6s %3s %12s@." r.config
        r.engine
        (outcome_to_string r.outcome)
        r.wall_s
        (if r.cache_hit then "hit" else "miss")
        (if r.winner then "*" else "")
        (effort_of_counters r.counters))
    rs;
  let s = summarize t in
  Format.fprintf ppf
    "  %d tasks (%d engine runs): %d holds, %d violated, %d unknown; %d \
     cache hits; %.2fs task wall (%.2fs incl. losers, %.2fs max)@."
    s.tasks s.runs s.holds s.violated s.unknown s.cache_hits s.total_wall_s
    s.total_run_wall_s s.max_wall_s

let record_to_json r =
  Json.Obj
    [
      ("config", Json.String r.config);
      ("engine", Json.String r.engine);
      ("outcome", Json.String (outcome_to_string r.outcome));
      ("detail", Json.String r.detail);
      ("wall_s", Json.Float r.wall_s);
      ("cache_hit", Json.Bool r.cache_hit);
      ("winner", Json.Bool r.winner);
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) r.counters) );
    ]

let summary_to_json s =
  Json.Obj
    [
      ("tasks", Json.Int s.tasks);
      ("runs", Json.Int s.runs);
      ("holds", Json.Int s.holds);
      ("violated", Json.Int s.violated);
      ("unknown", Json.Int s.unknown);
      ("cache_hits", Json.Int s.cache_hits);
      ("total_wall_s", Json.Float s.total_wall_s);
      ("total_run_wall_s", Json.Float s.total_run_wall_s);
      ("max_wall_s", Json.Float s.max_wall_s);
    ]

let to_json t =
  Json.Obj
    [
      ("records", Json.List (List.map record_to_json (records t)));
      ("summary", summary_to_json (summarize t));
    ]

let dump_json t path =
  let oc = open_out_bin path in
  output_string oc (Json.to_string ~pretty:true (to_json t));
  output_char oc '\n';
  close_out oc
