(** Run telemetry for the portfolio.

    A thread-safe collector of per-task records — one per engine run
    (or cache hit) — with an aggregate summary, a printable table and a
    JSON dump for the benchmark trajectory. Workers on any domain may
    {!add} concurrently. *)

type outcome = Holds | Violated | Unknown

val outcome_of_verdict : Tta_model.Engine.verdict -> outcome
val outcome_to_string : outcome -> string

type record = {
  config : string;  (** configuration id/label, e.g. ["E4 full-shifting+oos<=1"] *)
  engine : string;  (** {!Tta_model.Engine.id_to_string}, or ["cache"] *)
  outcome : outcome;
  detail : string;
  wall_s : float;
  cache_hit : bool;
  winner : bool;  (** did this run produce the task's selected verdict? *)
  counters : (string * int) list;
      (** the run's {!Tta_model.Engine.result} counters, sorted by
          name; [[]] on a cache hit. Replaces the old fixed
          [peak_bdd_nodes]/[sat_conflicts]/[explored_states] triple —
          those values are now the [reach.peak_nodes]/[sat.conflicts]/
          [explicit.states] entries. *)
}

type t

val create : unit -> t
val add : t -> record -> unit
val records : t -> record list
(** In insertion order. *)

type summary = {
  tasks : int;  (** records with [winner = true] *)
  runs : int;  (** all records *)
  holds : int;
  violated : int;
  unknown : int;  (** outcome counts over winner records *)
  cache_hits : int;
  total_wall_s : float;  (** summed over winner records: the cost of the
                             matrix as scheduled, excluding losing racers *)
  total_run_wall_s : float;  (** summed over all records *)
  max_wall_s : float;
}

val summarize : t -> summary

val pp_table : Format.formatter -> t -> unit
(** Per-record table plus the summary line. The effort column shows
    the run's most characteristic counter (peak BDD nodes, SAT
    conflicts, explored states, ...). *)

val to_json : t -> Json.t
(** [{ "records": [...], "summary": {...} }] — the schema is documented
    in doc/portfolio.md. *)

val dump_json : t -> string -> unit
(** Write {!to_json} (pretty-printed) to a file. *)
