(** Run telemetry for the portfolio.

    A thread-safe collector of per-task records — one per engine run
    (or cache hit) — with an aggregate summary, a printable table and a
    JSON dump for the benchmark trajectory. Workers on any domain may
    {!add} concurrently. *)

type outcome = Holds | Violated | Unknown

val outcome_of_verdict : Tta_model.Runner.verdict -> outcome
val outcome_to_string : outcome -> string

type record = {
  config : string;  (** configuration id/label, e.g. ["E4 full-shifting+oos<=1"] *)
  engine : string;  (** {!Tta_model.Runner.engine_to_string}, or ["cache"] *)
  outcome : outcome;
  detail : string;
  wall_s : float;
  cache_hit : bool;
  winner : bool;  (** did this run produce the task's selected verdict? *)
  peak_bdd_nodes : int option;
  sat_conflicts : int option;
  explored_states : int option;
}

type t

val create : unit -> t
val add : t -> record -> unit
val records : t -> record list
(** In insertion order. *)

type summary = {
  tasks : int;  (** records with [winner = true] *)
  runs : int;  (** all records *)
  holds : int;
  violated : int;
  unknown : int;  (** outcome counts over winner records *)
  cache_hits : int;
  total_wall_s : float;  (** summed over winner records: the cost of the
                             matrix as scheduled, excluding losing racers *)
  total_run_wall_s : float;  (** summed over all records *)
  max_wall_s : float;
}

val summarize : t -> summary

val pp_table : Format.formatter -> t -> unit
(** Per-record table plus the summary line. *)

val to_json : t -> Json.t
(** [{ "records": [...], "summary": {...} }] — the schema is documented
    in doc/portfolio.md. *)

val dump_json : t -> string -> unit
(** Write {!to_json} (pretty-printed) to a file. *)
