(** A work-stealing pool over OCaml 5 domains.

    Built for the portfolio's matrix fan-out: a fixed batch of
    independent tasks is distributed round-robin over per-worker
    deques; a worker that drains its own deque steals from the tail of
    its siblings', so a worker stuck on one slow model check does not
    strand the tasks queued behind it. Tasks never spawn further
    tasks, which keeps termination trivial: when every deque is empty,
    the batch is done. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], the pool's default width. *)

val map :
  ?domains:int -> ?obs:Obs.t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map f items] applies [f] to every item across [domains] workers
    (clamped to at least 1 and at most the number of items) and
    returns the per-item results in input order. The calling domain
    acts as worker 0. An application that raises yields [Error exn]
    for its item — one crashed task never takes down the batch, the
    caller decides what a failed item means (the portfolio records it
    as a failed run). *)

val map_exn : ?domains:int -> ?obs:Obs.t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] for infallible task functions: unwraps the results, re-raising
    the first [Error] (in input order) if any task did raise.

    [obs] (default {!Obs.disabled}) receives the pool's scheduling
    metrics: the [pool.tasks] and [pool.steals] counters, accumulated
    task queueing time in [pool.task_wait_us], and the
    [pool.queue_depth]/[pool.workers] gauges. Cells are atomic, so
    every worker bumps the same track safely. *)
