(** Star-coupler authority levels.

    Section 4.1 of the paper compares four feature sets, ordered by
    increasing centralized authority. Each level includes the abilities
    of the previous one:

    - {b Passive}: a dumb hub; forwards whatever arrives, never blocks
      or shifts a frame in time.
    - {b Time windows}: can open/close bus write access per slot, so a
      babbling or masquerading node is cut off outside its slot.
    - {b Small shifting}: can additionally make slight adjustments to
      frame timing and signal level — enough to eliminate
      slightly-off-specification (SOS) faults by reshaping marginal
      frames into clean ones.
    - {b Full shifting}: can additionally buffer an entire frame and
      retransmit it later, which enables semantic analysis of frame
      contents (blocking wrong C-states and masquerading cold-start
      frames) — and, as the paper demonstrates, also enables the
      out-of-slot replay failure mode. *)

type t =
  | Passive
  | Time_windows
  | Small_shifting
  | Full_shifting

let all = [ Passive; Time_windows; Small_shifting; Full_shifting ]

let to_string = function
  | Passive -> "passive"
  | Time_windows -> "time-windows"
  | Small_shifting -> "small-shifting"
  | Full_shifting -> "full-shifting"

let of_string = function
  | "passive" -> Some Passive
  | "time-windows" -> Some Time_windows
  | "small-shifting" -> Some Small_shifting
  | "full-shifting" -> Some Full_shifting
  | _ -> None

(* Capability predicates, so the coupler logic reads as the paper's
   feature table. *)

let enforces_time_windows = function
  | Passive -> false
  | Time_windows | Small_shifting | Full_shifting -> true

let reshapes_sos = function
  | Passive | Time_windows -> false
  | Small_shifting | Full_shifting -> true

let buffers_full_frames = function
  | Passive | Time_windows | Small_shifting -> false
  | Full_shifting -> true

(* Semantic analysis requires seeing the whole frame before forwarding,
   i.e. full-frame buffering. *)
let semantic_analysis = buffers_full_frames

(* The paper's authority ordering as a total order, so cost models
   (e.g. the synthesis Pareto frontier) can rank feature sets without
   re-deriving the ordering from the capability predicates. *)

let authority_rank = function
  | Passive -> 0
  | Time_windows -> 1
  | Small_shifting -> 2
  | Full_shifting -> 3

let compare a b = Int.compare (authority_rank a) (authority_rank b)
let pp ppf fs = Format.pp_print_string ppf (to_string fs)
