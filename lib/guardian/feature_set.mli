(** Star-coupler authority levels.

    Section 4.1 of the paper compares four feature sets, ordered by
    increasing centralized authority; each level includes the abilities
    of the previous one. *)

type t =
  | Passive  (** forwards everything, never blocks or shifts a frame *)
  | Time_windows
      (** can open/close bus write access per slot (babbling-idiot and
          masquerading protection) *)
  | Small_shifting
      (** can also slightly adjust frame timing and signal level —
          enough to eliminate SOS faults by reshaping marginal frames *)
  | Full_shifting
      (** can also buffer an entire frame and retransmit it later,
          enabling semantic analysis — and the out-of-slot replay
          failure mode the paper demonstrates *)

val all : t list
(** In increasing authority order. *)

val to_string : t -> string
val of_string : string -> t option

val enforces_time_windows : t -> bool
val reshapes_sos : t -> bool
val buffers_full_frames : t -> bool

val semantic_analysis : t -> bool
(** Semantic analysis requires seeing the whole frame before
    forwarding, i.e. full-frame buffering. *)

val authority_rank : t -> int
(** The level's position in the paper's authority ordering:
    [Passive] is 0, [Full_shifting] is 3. Consistent with the order of
    {!all}. *)

val compare : t -> t -> int
(** Total order by {!authority_rank} — more centralized authority
    compares greater. *)

val pp : Format.formatter -> t -> unit
