(** Structured tracing and metrics for the verification engines.

    One observability surface for everything that used to report effort
    through ad-hoc channels (the runner's option-triple, the solver's
    stats strings): hierarchical {b spans} timed against a shared
    clock, typed {b counters} and max-retaining {b gauges}, collected
    per {b track} (one track per engine run, worker or campaign) into a
    thread-safe {!Collector} that aggregates across the portfolio's
    domains.

    {b Disabled by default, near-zero overhead.} Instrumented code
    receives an {!t} handle; the {!disabled} handle is a no-op sink —
    {!tick}/{!add} on a cell obtained from it are non-allocating
    constant-time calls, and {!with_span} runs its thunk directly. The
    hot paths therefore keep their instrumentation unconditionally and
    the CLIs switch it on with [--trace]/[--metrics].

    {b Hot-path pattern.} Intern a cell once per run, then bump it in
    the loop:
    {[
      let conflicts = Obs.counter obs "sat.conflicts" in
      ... Obs.tick conflicts ...
    ]}

    {b Concurrency.} A track is written by one domain at a time (each
    engine run gets its own), but cells are [Atomic.t]-backed, so
    concurrent increments from several domains are sound; the collector
    itself is mutex-guarded.

    Three exporters: a human table, JSON-lines, and the Chrome
    [trace_event] format — load the latter in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto} for a flamegraph-style view of
    an engine race. See [doc/observability.md]. *)

type t
(** An observability handle: either the no-op sink or a live track of a
    {!Collector}. *)

val disabled : t
(** The no-op sink: every operation through it is a cheap no-op and
    allocates nothing. *)

val enabled : t -> bool
(** [false] exactly for {!disabled} — for guarding work that is only
    worth doing when somebody is listening (e.g. formatting span
    arguments). *)

(** {1 Counters and gauges} *)

type cell
(** An interned metric cell: a named counter or gauge on one track (or
    a no-op cell from {!disabled}). *)

val counter : t -> string -> cell
(** Intern a monotonically increasing counter, e.g.
    ["bdd.cache_hits"]. Idempotent: the same name on the same handle
    returns the same cell. *)

val gauge : t -> string -> cell
(** Intern a max-retaining gauge (high-water mark), e.g.
    ["pool.queue_depth"]. *)

val tick : cell -> unit
(** Increment a counter by one. No-op (and non-allocating) on a
    disabled cell; on a gauge it behaves like [record c 1]. *)

val add : cell -> int -> unit
(** Increment a counter by [n]. *)

val record : cell -> int -> unit
(** Record a gauge observation: the cell retains the maximum. *)

val incr_by : t -> string -> int -> unit
(** One-shot [add (counter t name) n] — for cold paths (end-of-run
    summaries) where interning a cell first is noise. *)

val set_max : t -> string -> int -> unit
(** One-shot [record (gauge t name) v]. *)

val counters : t -> (string * int) list
(** Snapshot of this track's cells, sorted by name. [[]] on
    {!disabled}. *)

(** {1 Spans} *)

type span
(** An open span (or a no-op span from {!disabled}). *)

val null_span : span

val start : t -> ?args:(string * string) list -> string -> span
(** Open a span. Spans on one track nest: a span started while another
    is open is its child (rendered one level deeper, and contained
    within it on the trace timeline). *)

val stop : span -> unit
(** Close the span. Closing {!null_span} (or closing twice) is a
    no-op. *)

val with_span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span, closing it whether
    [f] returns or raises. On {!disabled} this is just [f ()]. *)

val instant : t -> ?args:(string * string) list -> string -> unit
(** A zero-duration point event ("cancellation observed", "cache
    hit"). *)

(** {1 The collector} *)

module Collector : sig
  type handle := t

  type t
  (** A thread-safe collector: tracks, their spans and their cells.
      Multiple domains may create tracks and write to them
      concurrently. *)

  val create : ?clock:(unit -> float) -> unit -> t
  (** [clock] returns seconds (monotone within the run); it defaults to
      [Unix.gettimeofday]. Injecting a deterministic clock makes the
      exporters' output reproducible (used by the golden tests). *)

  val track : t -> string -> handle
  (** Open a new named track, e.g. ["E4 full-shifting/sat-bmc"]. Track
      ids are assigned in creation order. *)

  val totals : t -> (string * int) list
  (** All cells aggregated across tracks by name (counters summed,
      gauges maxed), sorted by name. *)

  val pp_table : Format.formatter -> t -> unit
  (** Human rendering: per track, its spans aggregated by name (count,
      total and max duration) and its cells; then the cross-track
      totals. *)

  val to_jsonl : t -> string
  (** One JSON object per line: a [track] line per track, a [span]/
      [instant] line per event (microsecond timestamps relative to the
      collector's creation), a [counter]/[gauge] line per cell. *)

  val chrome_trace : t -> Json.t
  (** The Chrome [trace_event] JSON object: one [thread_name] metadata
      record per track, an ["X"] (complete) event per span, an ["i"]
      (instant) event per point event and a ["C"] (counter) event per
      cell. *)

  val write_chrome_trace : t -> string -> unit
  (** Write {!chrome_trace} (pretty-printed) to a file. *)

  val write_jsonl : t -> string -> unit
end
