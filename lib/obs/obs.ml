(* Structured tracing and metrics — see the interface for the design
   overview. The disabled path is a distinct constructor in every
   type, so the no-op case of each operation is a constant-time match
   with no allocation. *)

type kind = Counter | Gauge

type event = {
  name : string;
  t0 : float;  (* seconds since the collector epoch *)
  dur : float;  (* negative for instants *)
  depth : int;  (* nesting level at open time, 0 = top *)
  args : (string * string) list;
}

type track = {
  col : collector;
  track_id : int;
  track_name : string;
  tlock : Mutex.t;  (* guards [cells] growth and [rev_events] *)
  cells : (string, kind * int Atomic.t) Hashtbl.t;
  mutable open_depth : int;
  mutable rev_events : event list;
}

and collector = {
  lock : Mutex.t;
  clock : unit -> float;
  epoch : float;
  mutable rev_tracks : track list;
  mutable next_track : int;
}

type t = Noop | Track of track

let disabled = Noop
let enabled = function Noop -> false | Track _ -> true

(* ------------------------------------------------------------------ *)
(* Counters and gauges *)

type cell = Null_cell | Cell of kind * int Atomic.t

let intern kind tr name =
  Mutex.lock tr.tlock;
  let c =
    match Hashtbl.find_opt tr.cells name with
    | Some (k, a) ->
        (* A name is one cell; the first interning fixes its kind. *)
        Cell (k, a)
    | None ->
        let a = Atomic.make 0 in
        Hashtbl.add tr.cells name (kind, a);
        Cell (kind, a)
  in
  Mutex.unlock tr.tlock;
  c

let counter t name =
  match t with Noop -> Null_cell | Track tr -> intern Counter tr name

let gauge t name =
  match t with Noop -> Null_cell | Track tr -> intern Gauge tr name

let rec record c v =
  match c with
  | Null_cell -> ()
  | Cell (_, a) ->
      let cur = Atomic.get a in
      if v > cur && not (Atomic.compare_and_set a cur v) then record c v

let add c n =
  match c with
  | Null_cell -> ()
  | Cell (Counter, a) -> ignore (Atomic.fetch_and_add a n)
  | Cell (Gauge, _) -> record c n

let tick c = add c 1
let incr_by t name n = add (counter t name) n
let set_max t name v = record (gauge t name) v

let counters t =
  match t with
  | Noop -> []
  | Track tr ->
      Mutex.lock tr.tlock;
      let l =
        Hashtbl.fold (fun k (_, a) acc -> (k, Atomic.get a) :: acc) tr.cells []
      in
      Mutex.unlock tr.tlock;
      List.sort (fun (a, _) (b, _) -> compare a b) l

(* ------------------------------------------------------------------ *)
(* Spans *)

type span =
  | Null_span
  | Open of {
      tr : track;
      name : string;
      t0 : float;
      depth : int;
      args : (string * string) list;
      mutable closed : bool;
    }

let null_span = Null_span

let now tr = tr.col.clock () -. tr.col.epoch

let push_event tr e =
  Mutex.lock tr.tlock;
  tr.rev_events <- e :: tr.rev_events;
  Mutex.unlock tr.tlock

let start t ?(args = []) name =
  match t with
  | Noop -> Null_span
  | Track tr ->
      let depth = tr.open_depth in
      tr.open_depth <- depth + 1;
      Open { tr; name; t0 = now tr; depth; args; closed = false }

let stop s =
  match s with
  | Null_span -> ()
  | Open o ->
      if not o.closed then begin
        o.closed <- true;
        o.tr.open_depth <- o.tr.open_depth - 1;
        push_event o.tr
          {
            name = o.name;
            t0 = o.t0;
            dur = now o.tr -. o.t0;
            depth = o.depth;
            args = o.args;
          }
      end

let with_span t ?args name f =
  match t with
  | Noop -> f ()
  | Track _ ->
      let s = start t ?args name in
      Fun.protect ~finally:(fun () -> stop s) f

let instant t ?(args = []) name =
  match t with
  | Noop -> ()
  | Track tr ->
      push_event tr
        { name; t0 = now tr; dur = -1.0; depth = tr.open_depth; args }

(* ------------------------------------------------------------------ *)
(* The collector *)

module Collector = struct
  type nonrec t = collector

  let create ?(clock = Unix.gettimeofday) () =
    {
      lock = Mutex.create ();
      clock;
      epoch = clock ();
      rev_tracks = [];
      next_track = 0;
    }

  let track col name =
    Mutex.lock col.lock;
    let tr =
      {
        col;
        track_id = col.next_track;
        track_name = name;
        tlock = Mutex.create ();
        cells = Hashtbl.create 16;
        open_depth = 0;
        rev_events = [];
      }
    in
    col.next_track <- col.next_track + 1;
    col.rev_tracks <- tr :: col.rev_tracks;
    Mutex.unlock col.lock;
    Track tr

  let tracks col =
    Mutex.lock col.lock;
    let ts = List.rev col.rev_tracks in
    Mutex.unlock col.lock;
    ts

  (* Events in emission (= completion) order; span starts are kept in
     the events themselves, so the exporters sort as needed. *)
  let events tr =
    Mutex.lock tr.tlock;
    let es = List.rev tr.rev_events in
    Mutex.unlock tr.tlock;
    es

  let cells tr =
    Mutex.lock tr.tlock;
    let l =
      Hashtbl.fold
        (fun k (kind, a) acc -> (k, kind, Atomic.get a) :: acc)
        tr.cells []
    in
    Mutex.unlock tr.tlock;
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) l

  let totals col =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun tr ->
        List.iter
          (fun (name, kind, v) ->
            match Hashtbl.find_opt tbl name with
            | None -> Hashtbl.add tbl name (kind, v)
            | Some (k, v0) ->
                Hashtbl.replace tbl name
                  (k, match k with Counter -> v0 + v | Gauge -> max v0 v))
          (cells tr))
      (tracks col);
    Hashtbl.fold (fun k (_, v) acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* ---------------------------------------------------------------- *)
  (* Human table *)

  let pp_table ppf col =
    let pp_dur ppf s =
      if s >= 1.0 then Format.fprintf ppf "%7.2fs " s
      else if s >= 1e-3 then Format.fprintf ppf "%7.2fms" (s *. 1e3)
      else Format.fprintf ppf "%7.1fus" (s *. 1e6)
    in
    List.iter
      (fun tr ->
        Format.fprintf ppf "  track %d: %s@." tr.track_id tr.track_name;
        (* Spans aggregated by name, in first-completion order. *)
        let order = ref [] in
        let agg = Hashtbl.create 16 in
        List.iter
          (fun e ->
            if e.dur >= 0.0 then begin
              if not (Hashtbl.mem agg e.name) then order := e.name :: !order;
              let n, total, mx =
                Option.value (Hashtbl.find_opt agg e.name) ~default:(0, 0.0, 0.0)
              in
              Hashtbl.replace agg e.name
                (n + 1, total +. e.dur, Float.max mx e.dur)
            end)
          (events tr);
        List.iter
          (fun name ->
            let n, total, mx = Hashtbl.find agg name in
            Format.fprintf ppf "    span %-32s %6dx total %a  max %a@." name n
              pp_dur total pp_dur mx)
          (List.rev !order);
        List.iter
          (fun (name, kind, v) ->
            Format.fprintf ppf "    %s %-31s %d@."
              (match kind with Counter -> "ctr " | Gauge -> "max ")
              name v)
          (cells tr))
      (tracks col);
    match totals col with
    | [] -> ()
    | tots ->
        Format.fprintf ppf "  totals across %d track(s):@."
          (List.length (tracks col));
        List.iter
          (fun (name, v) -> Format.fprintf ppf "    %-36s %d@." name v)
          tots

  (* ---------------------------------------------------------------- *)
  (* JSON-lines *)

  let us s = Float.round (s *. 1e6)

  let args_json args =
    Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args)

  let to_jsonl col =
    let buf = Buffer.create 4096 in
    let line j =
      Buffer.add_string buf (Json.to_string j);
      Buffer.add_char buf '\n'
    in
    List.iter
      (fun tr ->
        line
          (Json.Obj
             [
               ("type", Json.String "track");
               ("track", Json.Int tr.track_id);
               ("name", Json.String tr.track_name);
             ]);
        List.iter
          (fun e ->
            let base =
              [
                ("type", Json.String (if e.dur >= 0.0 then "span" else "instant"));
                ("track", Json.Int tr.track_id);
                ("name", Json.String e.name);
                ("ts_us", Json.Float (us e.t0));
                ("depth", Json.Int e.depth);
              ]
            in
            let dur = if e.dur >= 0.0 then [ ("dur_us", Json.Float (us e.dur)) ] else [] in
            let args = if e.args = [] then [] else [ ("args", args_json e.args) ] in
            line (Json.Obj (base @ dur @ args)))
          (events tr);
        List.iter
          (fun (name, kind, v) ->
            line
              (Json.Obj
                 [
                   ( "type",
                     Json.String
                       (match kind with Counter -> "counter" | Gauge -> "gauge") );
                   ("track", Json.Int tr.track_id);
                   ("name", Json.String name);
                   ("value", Json.Int v);
                 ]))
          (cells tr))
      (tracks col);
    Buffer.contents buf

  (* ---------------------------------------------------------------- *)
  (* Chrome trace_event format *)

  let chrome_trace col =
    let trs = tracks col in
    let meta tr =
      Json.Obj
        [
          ("ph", Json.String "M");
          ("pid", Json.Int 1);
          ("tid", Json.Int tr.track_id);
          ("name", Json.String "thread_name");
          ("args", Json.Obj [ ("name", Json.String tr.track_name) ]);
        ]
    in
    let ev tr e =
      let common =
        [
          ("pid", Json.Int 1);
          ("tid", Json.Int tr.track_id);
          ("name", Json.String e.name);
          ("ts", Json.Float (us e.t0));
        ]
      in
      if e.dur >= 0.0 then
        Json.Obj
          (("ph", Json.String "X")
           :: (common @ [ ("dur", Json.Float (us e.dur)) ]
              @ if e.args = [] then [] else [ ("args", args_json e.args) ]))
      else
        Json.Obj
          (("ph", Json.String "i")
           :: (common
              @ [ ("s", Json.String "t") ]
              @ if e.args = [] then [] else [ ("args", args_json e.args) ]))
    in
    (* Cell values are reported as one terminal counter sample per
       track (Perfetto renders them as stepped series). *)
    let cell_ev tr last_ts (name, _, v) =
      Json.Obj
        [
          ("ph", Json.String "C");
          ("pid", Json.Int 1);
          ("tid", Json.Int tr.track_id);
          ("name", Json.String name);
          ("ts", Json.Float last_ts);
          ("args", Json.Obj [ ("value", Json.Int v) ]);
        ]
    in
    let events_of tr =
      let es = events tr in
      let last_ts =
        List.fold_left
          (fun acc e -> Float.max acc (us (e.t0 +. Float.max e.dur 0.0)))
          0.0 es
      in
      (meta tr :: List.map (ev tr) es)
      @ List.map (cell_ev tr last_ts) (cells tr)
    in
    Json.Obj
      [
        ("traceEvents", Json.List (List.concat_map events_of trs));
        ("displayTimeUnit", Json.String "ms");
      ]

  let write_file path contents =
    let oc = open_out_bin path in
    output_string oc contents;
    close_out oc

  let write_chrome_trace col path =
    write_file path (Json.to_string ~pretty:true (chrome_trace col) ^ "\n")

  let write_jsonl col path = write_file path (to_jsonl col)
end
