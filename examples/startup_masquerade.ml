(* The paper's first counterexample, regenerated from the formal model:
   a star coupler that may buffer whole frames replays a stale
   cold-start frame, a listening node integrates on it (the big-bang
   rule is satisfied — it is the second cold-start frame that node has
   seen!), and a healthy node ends up frozen by clique avoidance.

   Run with:  dune exec examples/startup_masquerade.exe
   (Add 4-node paper scale with: -- --nodes 4, at ~1 min of SAT time.)
*)

let () =
  let nodes =
    match Array.to_list Sys.argv with
    | _ :: "--nodes" :: n :: _ -> int_of_string n
    | _ -> 3
  in
  Printf.printf
    "Model-checking the full-shifting star coupler (%d nodes, <= 1 \
     out-of-slot error)...\n%!"
    nodes;
  let cfg = Tta_model.Configs.full_shifting ~nodes () in
  let result =
    (Tta_model.Engine.get Tta_model.Engine.Sat_bmc).Tta_model.Engine.run
      ~max_depth:18 cfg
  in
  match result.Tta_model.Engine.verdict with
  | Tta_model.Engine.Violated { trace; model } ->
      Printf.printf
        "\nThe safety property fails: a single out-of-slot replay can \
         freeze an integrated node.\n\nShortest counterexample (%d TDMA \
         slots):\n%s\n"
        (Array.length trace)
        (Tta_model.Engine.describe_trace model trace ~nodes);
      print_endline
        "Reading the trace: one node cold-starts the cluster; its \
         cold-start frame is retained in the faulty coupler's buffer; \
         when the coupler replays it in a later slot, listening nodes \
         accept it as a fresh (second) cold-start frame and integrate \
         on its stale slot position. Frames from correctly synchronized \
         nodes then look incorrect to the poisoned node (and the \
         replayed frame looks incorrect to everyone else), so clique \
         avoidance expels a node that never failed.";
      (match Symkit.Trace.validate model trace with
      | Ok () -> print_endline "\n(The trace replays against the model.)"
      | Error e -> Printf.printf "\nTRACE VALIDATION FAILED: %s\n" e)
  | Tta_model.Engine.Holds { detail } ->
      Printf.printf "Unexpectedly safe (%s) — this contradicts the paper!\n"
        detail
  | Tta_model.Engine.Unknown { detail } ->
      Printf.printf "Inconclusive: %s\n" detail
